#include "exec/sink.h"

#include <algorithm>

namespace onesql {
namespace exec {

std::string Emission::ToString() const {
  std::string out = RowToString(row);
  if (undo) out += " undo";
  out += " ptime=" + ptime.ToString();
  out += " ver=" + std::to_string(ver);
  return out;
}

Row MaterializationSink::KeyOf(const Row& row) const {
  if (config_.version_key_columns.empty()) return row;
  Row key;
  key.reserve(config_.version_key_columns.size());
  for (size_t c : config_.version_key_columns) key.push_back(row[c]);
  return key;
}

void MaterializationSink::Materialize(ChangeKind kind, const Row& row,
                                      Timestamp ptime, size_t hash) {
  if (sink_metrics_ != nullptr) {
    sink_metrics_->emissions->Increment();
    (kind == ChangeKind::kDelete ? sink_metrics_->retractions
                                 : sink_metrics_->inserts)
        ->Increment();
  }
  table_.push_back(Change{kind, row, ptime});
  // Mirror SnapshotOf's multiset semantics incrementally.
  if (kind == ChangeKind::kInsert) {
    *snapshot_.FindOrInsert(row, hash) += 1;
  } else if (kind == ChangeKind::kDelete) {
    int64_t* count = snapshot_.Find(row, hash);
    if (count != nullptr) {
      if (--*count == 0) snapshot_.Erase(row, hash);
    }
  }
}

Status MaterializationSink::Flush(const Row& key, KeyState* state,
                                  Timestamp ptime, PaneKind pane) {
  obs::Span span(trace_, "sink_flush", "sink", query_tag_);
  const size_t emissions_before = emissions_.size();
  // Retractions first, then additions (Listing 14's undo-then-insert order).
  for (const auto& [row, last_count] : state->last) {
    auto it = state->current.find(row);
    const int64_t current_count = it == state->current.end() ? 0 : it->second;
    for (int64_t i = current_count; i < last_count; ++i) {
      emissions_.push_back(Emission{row, true, ptime, state->next_ver++});
      Materialize(ChangeKind::kDelete, row, ptime, HashRow(row));
    }
  }
  for (const auto& [row, current_count] : state->current) {
    auto it = state->last.find(row);
    const int64_t last_count = it == state->last.end() ? 0 : it->second;
    for (int64_t i = last_count; i < current_count; ++i) {
      emissions_.push_back(Emission{row, false, ptime, state->next_ver++});
      Materialize(ChangeKind::kInsert, row, ptime, HashRow(row));
    }
  }
  state->last = state->current;
  if (sink_metrics_ != nullptr && emissions_.size() > emissions_before) {
    switch (pane) {
      case PaneKind::kEarly:
        sink_metrics_->panes_early->Increment();
        break;
      case PaneKind::kOnTime:
        sink_metrics_->panes_on_time->Increment();
        break;
      case PaneKind::kLate:
        sink_metrics_->panes_late->Increment();
        break;
    }
    if (state->completeness.has_value()) {
      // Event-time emit latency: how long past the pane's completeness
      // timestamp the materialization happened. Both operands live on the
      // feed's logical clock, so the value is deterministic and identical
      // at any shard count.
      const int64_t lag_ms = (ptime - *state->completeness).millis();
      sink_metrics_->emit_latency_ms->Record(
          lag_ms > 0 ? static_cast<uint64_t>(lag_ms) : 0);
    }
  }
  (void)key;
  return Status::OK();
}

namespace {

void MaybeEraseTimer(std::multimap<Timestamp, Row>* timers, Timestamp at,
                     const Row& key) {
  auto range = timers->equal_range(at);
  for (auto it = range.first; it != range.second; ++it) {
    if (RowsEqual(it->second, key)) {
      timers->erase(it);
      return;
    }
  }
}

}  // namespace

void MaterializationSink::MaybeReclaim(const Row& key) {
  // Only complete groupings are reclaimed: an idle-but-incomplete grouping
  // must keep its `ver` counter (e.g. between the DELETE and INSERT halves
  // of an aggregate update, the net state is momentarily empty).
  auto it = keys_.find(key);
  if (it == keys_.end()) return;
  KeyState& state = it->second;
  if (!state.complete) return;
  if (state.deadline.has_value()) {
    MaybeEraseTimer(&timers_, *state.deadline, key);
  }
  keys_.erase(it);
}

Status MaterializationSink::ApplyInstant(bool is_delete, const Row& row,
                                         Timestamp ptime) {
  const size_t hash = HashRow(row);
  InstantState& state = *instant_keys_.FindOrInsert(row, hash);
  if (is_delete) {
    if (state.count == 0) {
      return Status::ExecutionError(
          "sink received a DELETE for a row that is not in the result");
    }
    state.count -= 1;
  } else {
    state.count += 1;
  }
  emissions_.push_back(Emission{row, is_delete, ptime, state.next_ver++});
  Materialize(is_delete ? ChangeKind::kDelete : ChangeKind::kInsert, row,
              ptime, hash);
  return Status::OK();
}

Status MaterializationSink::ProcessElement(int, const Change& change) {
  if (change.kind == ChangeKind::kUpsert) {
    return Status::ExecutionError("sink cannot consume UPSERT changes");
  }
  // Instant mode with whole-row version keys (the default view semantics):
  // the key state degenerates to a (count, next_ver) pair in a flat hash
  // table, with the row hashed exactly once for key state and snapshot.
  if (instant_whole_row()) {
    return ApplyInstant(change.kind == ChangeKind::kDelete, change.row,
                        change.ptime);
  }
  // In AFTER WATERMARK mode a change whose completeness timestamp is already
  // below the watermark belongs to a grouping that was declared complete —
  // it is dropped, exactly as Extension 2 drops late aggregation inputs.
  if (config_.after_watermark && config_.completeness_column.has_value()) {
    const Value& cv = change.row[*config_.completeness_column];
    if (!cv.is_null() &&
        cv.AsTimestamp() + config_.allowed_lateness <= merger_.combined()) {
      ++late_drops_;
      if (sink_metrics_ != nullptr) sink_metrics_->late_drops->Increment();
      return Status::OK();
    }
  }

  const Row key = KeyOf(change.row);
  KeyState& state = keys_[key];

  if (state.complete) {
    ++late_drops_;
    if (sink_metrics_ != nullptr) sink_metrics_->late_drops->Increment();
    return Status::OK();
  }

  if (change.kind == ChangeKind::kInsert) {
    state.current[change.row] += 1;
  } else {
    auto it = state.current.find(change.row);
    if (it == state.current.end()) {
      return Status::ExecutionError(
          "sink received a DELETE for a row that is not in the result");
    }
    if (--it->second == 0) state.current.erase(it);
  }

  if (config_.after_watermark && config_.completeness_column.has_value() &&
      !state.completeness.has_value()) {
    const Value& cv = change.row[*config_.completeness_column];
    if (!cv.is_null()) {
      state.completeness = cv.AsTimestamp();
      pending_complete_.emplace(*state.completeness, key);
    }
  }

  if (instant()) {
    // Single-change fast path: the materialized diff is exactly this change,
    // so there is no need to diff the key's whole state (`last` mirrors
    // `current` and is not maintained in instant mode).
    emissions_.push_back(Emission{change.row, change.kind == ChangeKind::kDelete,
                                  change.ptime, state.next_ver++});
    Materialize(change.kind, change.row, change.ptime, HashRow(change.row));
    return Status::OK();
  }

  if (config_.delay.has_value()) {
    if (!state.deadline.has_value()) {
      state.deadline = change.ptime + *config_.delay;
      timers_.emplace(*state.deadline, key);
    }
    return Status::OK();
  }

  // Pure AFTER WATERMARK with allowed lateness: once the on-time pane fired,
  // late corrections materialize immediately (the "late pane").
  if (state.on_time_fired) {
    ONESQL_RETURN_NOT_OK(Flush(key, &state, change.ptime, PaneKind::kLate));
  }
  return Status::OK();
}

Status MaterializationSink::ProcessBatch(int port, const ChangeBatch& batch) {
  // The scalar runtime advances the sink's processing-time clock before
  // delivering each event; a batch delivers that interleaving itself, so
  // AFTER DELAY timers fire at exactly the scalar instants.
  if (instant_whole_row()) {
    for (size_t i = 0; i < batch.num_rows; ++i) {
      ONESQL_RETURN_NOT_OK(AdvanceTo(batch.ptimes[i], false));
      batch.MaterializeRow(i, &row_scratch_);
      Status status =
          ApplyInstant(batch.weights[i] < 0, row_scratch_, batch.ptimes[i]);
      if (!status.ok()) {
        SetBatchFailure(i < batch.seqs.size() ? batch.seqs[i] : 0,
                        batch.ptimes[i]);
        return status;
      }
    }
    return Status::OK();
  }
  Change scratch;
  for (size_t i = 0; i < batch.num_rows; ++i) {
    ONESQL_RETURN_NOT_OK(AdvanceTo(batch.ptimes[i], false));
    batch.MaterializeChange(i, &scratch);
    Status status = ProcessElement(port, scratch);
    if (!status.ok()) {
      SetBatchFailure(i < batch.seqs.size() ? batch.seqs[i] : 0,
                      batch.ptimes[i]);
      return status;
    }
  }
  return Status::OK();
}

Status MaterializationSink::ProcessWatermark(int port, Timestamp watermark,
                                   Timestamp ptime) {
  if (!merger_.Update(port, watermark)) return Status::OK();
  if (!config_.after_watermark) return Status::OK();

  const Timestamp wm = merger_.combined();
  while (!pending_complete_.empty() && pending_complete_.begin()->first <= wm) {
    const Row key = pending_complete_.begin()->second;
    pending_complete_.erase(pending_complete_.begin());
    auto it = keys_.find(key);
    if (it == keys_.end()) continue;
    KeyState& state = it->second;
    if (!state.on_time_fired) {
      // On-time pane: materialize the result at the watermark's arrival
      // time (Listing 13: ptime is when the watermark passed the window
      // end).
      ONESQL_RETURN_NOT_OK(Flush(key, &state, ptime, PaneKind::kOnTime));
      state.on_time_fired = true;
      if (config_.allowed_lateness.millis() > 0) {
        // Stay open for late corrections until the lateness budget passes.
        pending_complete_.emplace(
            *state.completeness + config_.allowed_lateness, key);
        continue;
      }
    } else {
      // Lateness budget exhausted: flush any outstanding correction.
      ONESQL_RETURN_NOT_OK(Flush(key, &state, ptime, PaneKind::kLate));
    }
    state.complete = true;
    MaybeReclaim(key);
  }
  return Status::OK();
}

Status MaterializationSink::AdvanceTo(Timestamp now, bool inclusive) {
  if (now > now_) now_ = now;
  while (!timers_.empty()) {
    const Timestamp deadline = timers_.begin()->first;
    if (inclusive ? deadline > now : deadline >= now) break;
    const Row key = timers_.begin()->second;
    timers_.erase(timers_.begin());
    auto it = keys_.find(key);
    if (it == keys_.end()) continue;
    KeyState& state = it->second;
    state.deadline.reset();
    // Combined EMIT AFTER WATERMARK + AFTER DELAY: the delay timer produces
    // the *early* panes of the early/on-time/late pattern, but it must still
    // respect the completeness gate. A grouping whose completeness timestamp
    // is unknown (NULL so far) has no gate to fire against — in pure
    // AFTER WATERMARK mode it would stay pending, so the timer must not
    // materialize it either. (Previously the timer flushed it, leaking an
    // ungated emission and silently suppressing the eventual on-time flush,
    // because Flush had already advanced `last` to `current`.)
    if (config_.after_watermark && !state.on_time_fired &&
        !state.completeness.has_value()) {
      continue;
    }
    // Materialize the coalesced net change at the deadline instant. Under a
    // completeness gate the timer pane is speculative (early) until the
    // on-time pane fires and a late correction afterwards; in pure AFTER
    // DELAY mode it is the only pane and counts as on-time.
    const PaneKind pane = !config_.after_watermark ? PaneKind::kOnTime
                          : state.on_time_fired    ? PaneKind::kLate
                                                   : PaneKind::kEarly;
    ONESQL_RETURN_NOT_OK(Flush(key, &state, deadline, pane));
    MaybeReclaim(key);
  }
  return Status::OK();
}

void MaterializationSink::SampleObs() const {
  if (sink_metrics_ == nullptr) return;
  sink_metrics_->timer_queue_depth->Set(static_cast<int64_t>(timers_.size()));
  sink_metrics_->pending_panes->Set(
      static_cast<int64_t>(pending_complete_.size()));
  sink_metrics_->snapshot_rows->Set(static_cast<int64_t>(snapshot_.size()));
}

void MaterializationSink::ZeroObs() const {
  if (sink_metrics_ == nullptr) return;
  sink_metrics_->timer_queue_depth->Set(0);
  sink_metrics_->pending_panes->Set(0);
  sink_metrics_->snapshot_rows->Set(0);
}

std::vector<Row> MaterializationSink::SnapshotAt(Timestamp ptime) const {
  // Fast path: at or past the latest materialized change the snapshot is
  // exactly the incrementally maintained bag — no changelog replay. The
  // changelog (append order is non-decreasing in ptime) is only replayed for
  // genuinely historical point-in-time queries.
  if (table_.empty() || ptime >= table_.back().ptime) {
    return CurrentSnapshot();
  }
  // Replay only the prefix with ptime <= `ptime` (the changelog is sorted by
  // ptime, so binary search bounds the scan).
  const auto end = std::upper_bound(
      table_.begin(), table_.end(), ptime,
      [](Timestamp t, const Change& c) { return t < c.ptime; });
  changelog_entries_scanned_ +=
      static_cast<int64_t>(std::distance(table_.begin(), end));
  return SnapshotOf(Changelog(table_.begin(), end), Timestamp::Max());
}

std::vector<Row> MaterializationSink::CurrentSnapshot() const {
  // The flat map iterates in insertion-perturbed order; sort slot pointers
  // to reproduce the canonical RowLess order of the old std::map rendering.
  std::vector<const FlatRowMap<int64_t>::Slot*> sorted;
  sorted.reserve(snapshot_.size());
  for (const auto& slot : snapshot_.slots()) sorted.push_back(&slot);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return RowLess{}(a->key, b->key);
  });
  std::vector<Row> out;
  for (const auto* slot : sorted) {
    for (int64_t i = 0; i < slot->value; ++i) out.push_back(slot->key);
  }
  return out;
}

namespace {

void SaveRowCountMap(const std::map<Row, int64_t, RowLess>& map,
                     state::Writer* w) {
  w->PutVarint(map.size());
  for (const auto& [row, count] : map) {
    w->PutRow(row);
    w->PutSigned(count);
  }
}

Status LoadRowCountMap(std::map<Row, int64_t, RowLess>* map,
                       state::Reader* r) {
  ONESQL_ASSIGN_OR_RETURN(uint64_t n, r->ReadVarint());
  if (n > r->remaining()) {
    return Status::DataLoss("impossible row-count map size in checkpoint");
  }
  for (uint64_t i = 0; i < n; ++i) {
    ONESQL_ASSIGN_OR_RETURN(Row row, r->ReadRow());
    ONESQL_ASSIGN_OR_RETURN(int64_t count, r->ReadSigned());
    (*map)[std::move(row)] += count;
  }
  return Status::OK();
}

void SaveOptionalTimestamp(const std::optional<Timestamp>& t,
                           state::Writer* w) {
  w->PutBool(t.has_value());
  if (t.has_value()) w->PutTimestamp(*t);
}

Result<std::optional<Timestamp>> LoadOptionalTimestamp(state::Reader* r) {
  ONESQL_ASSIGN_OR_RETURN(bool has, r->ReadBool());
  if (!has) return std::optional<Timestamp>();
  ONESQL_ASSIGN_OR_RETURN(Timestamp t, r->ReadTimestamp());
  return std::optional<Timestamp>(t);
}

void SaveTimerQueue(const std::multimap<Timestamp, Row>& timers,
                    state::Writer* w) {
  // Multimap order (timestamp, then insertion order) is deterministic and
  // reload preserves it, so restored timers fire in the original order.
  w->PutVarint(timers.size());
  for (const auto& [at, key] : timers) {
    w->PutTimestamp(at);
    w->PutRow(key);
  }
}

Status LoadTimerQueue(std::multimap<Timestamp, Row>* timers,
                      state::Reader* r) {
  ONESQL_ASSIGN_OR_RETURN(uint64_t n, r->ReadVarint());
  if (n > r->remaining()) {
    return Status::DataLoss("impossible timer queue size in checkpoint");
  }
  for (uint64_t i = 0; i < n; ++i) {
    ONESQL_ASSIGN_OR_RETURN(Timestamp at, r->ReadTimestamp());
    ONESQL_ASSIGN_OR_RETURN(Row key, r->ReadRow());
    timers->emplace(at, std::move(key));
  }
  return Status::OK();
}

}  // namespace

Status MaterializationSink::SaveState(state::Writer* w) const {
  merger_.SaveState(w);
  w->PutTimestamp(now_);
  w->PutSigned(late_drops_);

  if (instant_whole_row()) {
    // Synthesize the legacy KeyState layout from the degenerate instant
    // states so the checkpoint format is identical in every mode: key = the
    // row, `last` empty (never flushed), `current` = {row: count} when live,
    // no deadline/completeness, flags false.
    std::vector<const FlatRowMap<InstantState>::Slot*> entries;
    entries.reserve(instant_keys_.size());
    for (const auto& slot : instant_keys_.slots()) entries.push_back(&slot);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) {
                return RowLess{}(a->key, b->key);
              });
    w->PutVarint(entries.size());
    for (const auto* entry : entries) {
      w->PutRow(entry->key);
      w->PutVarint(0);  // last
      if (entry->value.count > 0) {  // current
        w->PutVarint(1);
        w->PutRow(entry->key);
        w->PutSigned(entry->value.count);
      } else {
        w->PutVarint(0);
      }
      w->PutBool(false);  // deadline
      w->PutBool(false);  // completeness
      w->PutBool(false);  // on_time_fired
      w->PutBool(false);  // complete
      w->PutSigned(entry->value.next_ver);
    }
  } else {
    // Key states, sorted by key for a canonical byte stream.
    std::vector<const std::pair<const Row, KeyState>*> entries;
    entries.reserve(keys_.size());
    for (const auto& entry : keys_) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) {
                return RowLess{}(a->first, b->first);
              });
    w->PutVarint(entries.size());
    for (const auto* entry : entries) {
      const KeyState& state = entry->second;
      w->PutRow(entry->first);
      SaveRowCountMap(state.last, w);
      SaveRowCountMap(state.current, w);
      SaveOptionalTimestamp(state.deadline, w);
      SaveOptionalTimestamp(state.completeness, w);
      w->PutBool(state.on_time_fired);
      w->PutBool(state.complete);
      w->PutSigned(state.next_ver);
    }
  }

  SaveTimerQueue(timers_, w);
  SaveTimerQueue(pending_complete_, w);

  w->PutVarint(emissions_.size());
  for (const Emission& e : emissions_) {
    w->PutRow(e.row);
    w->PutBool(e.undo);
    w->PutTimestamp(e.ptime);
    w->PutSigned(e.ver);
  }

  // The changelog; the incrementally maintained snapshot is intentionally
  // not serialized — LoadState rebuilds it from these changes.
  w->PutVarint(table_.size());
  for (const Change& change : table_) w->PutChange(change);
  return Status::OK();
}

Status MaterializationSink::LoadState(state::Reader* r,
                                      const StateKeyFilter* filter) {
  (void)filter;  // the sink is shared across shards; loaded exactly once
  ONESQL_RETURN_NOT_OK(merger_.LoadState(r));
  ONESQL_ASSIGN_OR_RETURN(Timestamp now, r->ReadTimestamp());
  now_ = std::max(now_, now);
  ONESQL_ASSIGN_OR_RETURN(int64_t drops, r->ReadSigned());
  late_drops_ += drops;

  ONESQL_ASSIGN_OR_RETURN(uint64_t nkeys, r->ReadVarint());
  if (nkeys > r->remaining()) {
    return Status::DataLoss("impossible sink key count in checkpoint");
  }
  for (uint64_t i = 0; i < nkeys; ++i) {
    ONESQL_ASSIGN_OR_RETURN(Row key, r->ReadRow());
    KeyState state;
    ONESQL_RETURN_NOT_OK(LoadRowCountMap(&state.last, r));
    ONESQL_RETURN_NOT_OK(LoadRowCountMap(&state.current, r));
    ONESQL_ASSIGN_OR_RETURN(state.deadline, LoadOptionalTimestamp(r));
    ONESQL_ASSIGN_OR_RETURN(state.completeness, LoadOptionalTimestamp(r));
    ONESQL_ASSIGN_OR_RETURN(state.on_time_fired, r->ReadBool());
    ONESQL_ASSIGN_OR_RETURN(state.complete, r->ReadBool());
    ONESQL_ASSIGN_OR_RETURN(state.next_ver, r->ReadSigned());
    if (instant_whole_row()) {
      // Fold the legacy layout back into the degenerate instant state (the
      // key is the row; `current` holds at most that row).
      int64_t count = 0;
      for (const auto& [row, c] : state.current) {
        (void)row;
        count += c;
      }
      bool inserted = false;
      InstantState* slot =
          instant_keys_.FindOrInsert(key, HashRow(key), &inserted);
      if (!inserted) {
        return Status::DataLoss("duplicate sink key state in checkpoint");
      }
      slot->count = count;
      slot->next_ver = state.next_ver;
      continue;
    }
    const bool inserted =
        keys_.emplace(std::move(key), std::move(state)).second;
    if (!inserted) {
      return Status::DataLoss("duplicate sink key state in checkpoint");
    }
  }

  ONESQL_RETURN_NOT_OK(LoadTimerQueue(&timers_, r));
  ONESQL_RETURN_NOT_OK(LoadTimerQueue(&pending_complete_, r));

  ONESQL_ASSIGN_OR_RETURN(uint64_t nemissions, r->ReadVarint());
  if (nemissions > r->remaining()) {
    return Status::DataLoss("impossible emission count in checkpoint");
  }
  emissions_.reserve(emissions_.size() + static_cast<size_t>(nemissions));
  for (uint64_t i = 0; i < nemissions; ++i) {
    Emission e;
    ONESQL_ASSIGN_OR_RETURN(e.row, r->ReadRow());
    ONESQL_ASSIGN_OR_RETURN(e.undo, r->ReadBool());
    ONESQL_ASSIGN_OR_RETURN(e.ptime, r->ReadTimestamp());
    ONESQL_ASSIGN_OR_RETURN(e.ver, r->ReadSigned());
    emissions_.push_back(std::move(e));
  }

  ONESQL_ASSIGN_OR_RETURN(uint64_t nchanges, r->ReadVarint());
  if (nchanges > r->remaining()) {
    return Status::DataLoss("impossible changelog size in checkpoint");
  }
  table_.reserve(table_.size() + static_cast<size_t>(nchanges));
  for (uint64_t i = 0; i < nchanges; ++i) {
    ONESQL_ASSIGN_OR_RETURN(Change change, r->ReadChange());
    // Rebuild the incrementally maintained snapshot from the changelog (the
    // same fold Materialize applies), so they cannot diverge.
    const size_t hash = HashRow(change.row);
    if (change.kind == ChangeKind::kInsert) {
      *snapshot_.FindOrInsert(change.row, hash) += 1;
    } else if (change.kind == ChangeKind::kDelete) {
      int64_t* count = snapshot_.Find(change.row, hash);
      if (count != nullptr) {
        if (--*count == 0) snapshot_.Erase(change.row, hash);
      }
    }
    table_.push_back(std::move(change));
  }
  return Status::OK();
}

size_t MaterializationSink::StateBytes() const {
  size_t total = 0;
  if (instant_whole_row()) {
    // The same formula the generic path charges: 64 bytes per key entry plus
    // 48 per live `current` row (`last` is never maintained in instant mode).
    for (const auto& slot : instant_keys_.slots()) {
      total += slot.key.size() * sizeof(Value) + 64;
      if (slot.value.count > 0) {
        total += slot.key.size() * sizeof(Value) + 48;
      }
    }
    return total;
  }
  for (const auto& [key, state] : keys_) {
    total += key.size() * sizeof(Value) + 64;
    for (const auto& [row, count] : state.last) {
      (void)count;
      total += row.size() * sizeof(Value) + 48;
    }
    for (const auto& [row, count] : state.current) {
      (void)count;
      total += row.size() * sizeof(Value) + 48;
    }
  }
  return total;
}

}  // namespace exec
}  // namespace onesql
