#ifndef ONESQL_EXEC_ACCUMULATOR_H_
#define ONESQL_EXEC_ACCUMULATOR_H_

#include <memory>

#include "common/result.h"
#include "common/value.h"
#include "plan/bound_expr.h"
#include "state/serde.h"

namespace onesql {
namespace exec {

/// A retractable aggregate accumulator. Because TVR changelogs carry DELETEs
/// as well as INSERTs (Section 3.3.1), every aggregate must support exact
/// retraction: SUM/COUNT/AVG invert arithmetically; MIN/MAX maintain an
/// ordered multiset of inputs.
class Accumulator {
 public:
  virtual ~Accumulator() = default;

  /// Folds one input value in. NULL inputs are ignored (SQL semantics),
  /// except for COUNT(*) which has no argument.
  virtual Status Add(const Value& v) = 0;

  /// Removes one previously added value.
  virtual Status Retract(const Value& v) = 0;

  /// Current aggregate value; NULL when no non-null input remains (0 for
  /// COUNT/COUNT(*)).
  virtual Value Current() const = 0;

  /// Bytes of state held (approximate), for the state-size benchmarks.
  virtual size_t StateBytes() const = 0;

  /// Serializes the accumulator state in the canonical encoding. A restored
  /// accumulator (same aggregate call, fresh instance, LoadState from the
  /// saved bytes) is observationally identical to the original.
  virtual void SaveState(state::Writer* w) const = 0;

  /// Restores state saved by SaveState into a freshly constructed
  /// accumulator for the same aggregate call. Structural damage yields
  /// Status::DataLoss.
  virtual Status LoadState(state::Reader* r) = 0;
};

using AccumulatorPtr = std::unique_ptr<Accumulator>;

/// Creates an accumulator for the given call. DISTINCT is supported for
/// every function by wrapping the base accumulator behind a value-count map.
Result<AccumulatorPtr> MakeAccumulator(const plan::AggregateCall& call);

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_ACCUMULATOR_H_
