#ifndef ONESQL_EXEC_CHANGE_BATCH_H_
#define ONESQL_EXEC_CHANGE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/changelog.h"
#include "common/row.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace onesql {
namespace exec {

/// A typed column of values inside a ChangeBatch. Hot types (BIGINT, DOUBLE,
/// TIMESTAMP, INTERVAL, BOOLEAN) are stored in flat primitive vectors with a
/// separate validity mask, so the vectorized kernels run tight typed loops
/// with no `Value` variant dispatch. Everything else — and any column whose
/// observed value tags do not match the lane (e.g. a BIGINT value fed into a
/// DOUBLE-declared column, which `IsImplicitlyCoercible` permits) — lives in
/// the generic lane as exact `Value`s, which is the documented scalar
/// fallback representation.
class ColumnVector {
 public:
  enum class Lane : uint8_t {
    kI64,      // BIGINT / TIMESTAMP / INTERVAL payloads as int64 millis
    kF64,      // DOUBLE payloads, bit-exact
    kBool,     // BOOLEAN payloads as 0/1
    kGeneric,  // exact Values (VARCHAR, mixed tags, unknown types)
  };

  ColumnVector() = default;

  /// The lane a freshly declared column of `type` starts in.
  static Lane LaneFor(DataType type);

  Lane lane() const { return lane_; }
  DataType decl() const { return decl_; }
  size_t size() const { return valid_.size(); }

  /// Clears contents, keeps capacity, lane and declared type.
  void Clear();

  /// Clears and switches to the starting lane for `type`.
  void Reset(DataType type);

  /// Appends one value. NULLs set validity 0 in every lane. A non-null value
  /// whose tag does not match the current typed lane demotes the whole
  /// column to the generic lane, converting every already-appended entry
  /// back to its exact Value first (values are never coerced across lanes).
  void Append(const Value& v);

  /// Shrinks the column to its first `n` entries (engine-side rollback when
  /// a row fails a later validation step).
  void Truncate(size_t n);

  /// Materializes entry `i` as an exact Value (typed lanes re-wrap through
  /// the declared type; invalid entries yield NULL).
  Value ValueAt(size_t i) const;

  /// Assigns entry `i` into an existing Value. Equivalent to
  /// `*out = ValueAt(i)` but reuses `out`'s string storage when it already
  /// holds the same alternative (scratch rows reused across a batch).
  void AssignTo(size_t i, Value* out) const;

  bool IsValid(size_t i) const { return valid_[i] != 0; }

  // Raw lane access for kernels. Only the vector matching lane() is
  // meaningful.
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<uint8_t>& b8() const { return b8_; }
  const std::vector<Value>& generic() const { return generic_; }
  const std::vector<uint8_t>& valid() const { return valid_; }

  // Mutable access for kernels that build output columns directly.
  std::vector<int64_t>* mutable_i64() { return &i64_; }
  std::vector<double>* mutable_f64() { return &f64_; }
  std::vector<uint8_t>* mutable_b8() { return &b8_; }
  std::vector<Value>* mutable_generic() { return &generic_; }
  std::vector<uint8_t>* mutable_valid() { return &valid_; }
  void set_decl(DataType type) { decl_ = type; }
  void set_lane(Lane lane) { lane_ = lane; }

  void Reserve(size_t n);

 private:
  void Demote();

  Lane lane_ = Lane::kGeneric;
  DataType decl_ = DataType::kNull;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<Value> generic_;
  std::vector<uint8_t> valid_;
};

/// A column-oriented batch of changelog entries: one ColumnVector per row
/// column, plus a retraction/weight column (+1 INSERT, -1 DELETE), per-row
/// processing times, and optional per-row sequence numbers (populated by the
/// feed path so the sharded runtime can scatter a batch and still merge in
/// deterministic input order).
struct ChangeBatch {
  std::vector<ColumnVector> columns;
  std::vector<int8_t> weights;
  std::vector<Timestamp> ptimes;
  std::vector<uint64_t> seqs;
  size_t num_rows = 0;

  void Clear();

  /// Clears and adopts the column count + lane/decl layout of `o` (capacity
  /// kept, data dropped).
  void ResetLike(const ChangeBatch& o);

  /// Clears and declares `types.size()` columns with the given types.
  void ResetForTypes(const std::vector<DataType>& types);

  void Reserve(size_t rows);

  /// Appends a whole row (column count must match; columns demote as
  /// needed). `weight` is +1 for INSERT, -1 for DELETE.
  void AppendRow(const Row& row, int8_t weight, Timestamp ptime, uint64_t seq);

  /// Copies row `i` of `src` (including weight/ptime/seq) into this batch.
  /// Column layouts must have the same arity.
  void AppendRowFrom(const ChangeBatch& src, size_t i);

  /// Drops the last appended row including its weight/ptime/seq.
  void PopRow();

  Row RowAt(size_t i) const;
  void MaterializeRow(size_t i, Row* out) const;
  void MaterializeChange(size_t i, Change* out) const;
};

/// One unit of the chunked feed path. Element runs from a single source are
/// carried as a columnar batch; watermark advances and singleton events
/// (the per-event Insert/Delete/AdvanceWatermark API) stay scalar.
struct InputChunk {
  enum class Kind : uint8_t { kRows, kWatermark, kSingle };

  Kind kind = Kind::kRows;
  std::string source;        // original spelling (checkpoint fidelity)
  std::string source_lower;  // routing key, computed once

  ChangeBatch batch;  // kRows

  // kWatermark / kSingle:
  Timestamp ptime;
  Timestamp watermark;        // kWatermark
  ChangeKind event_kind = ChangeKind::kInsert;  // kSingle
  Row row;                    // kSingle
  uint64_t seq = 0;           // kWatermark / kSingle

  /// Sequence number of the first / last event carried by this chunk.
  uint64_t FirstSeq() const;
  uint64_t LastSeq() const;
  /// Number of feed events this chunk carries.
  size_t NumEvents() const;
  /// Largest processing time carried by this chunk.
  Timestamp MaxPtime() const;
};

/// Per-push failure context for the batch path. Batched operators process a
/// whole vector before the runtime regains control, so the failing row's
/// sequence/ptime is reported out of band: the runtime clears the context
/// before a push and, on error, reads back which row failed (first setter
/// wins — downstream operators re-reporting the same failure are ignored).
struct BatchFailure {
  bool has = false;
  uint64_t seq = 0;
  Timestamp ptime;
};

/// Clears the thread-local failure context (runtime, before each push).
void ClearBatchFailure();
/// Records a failure if none is recorded yet (operators, on first error).
void SetBatchFailure(uint64_t seq, Timestamp ptime);
/// Reads the current context (runtime, after a failed push).
const BatchFailure& GetBatchFailure();

/// Groups a scalar event stream into InputChunks: per-source open batches
/// that close on that source's own watermark (other sources' watermarks do
/// not cut a run — relative order across sources is preserved through
/// per-row sequence numbers, which every consumer merges on). Used by the
/// runtimes' PushBatch compatibility path and the engine's replay; the
/// engine's hot Feed path runs its own fused validate+append loop with
/// declared column lanes.
class ChunkBuilder {
 public:
  /// Appends into `out`; `first_seq` numbers the events.
  ChunkBuilder(std::vector<InputChunk>* out, uint64_t first_seq);

  /// Returns the open batch for `source`, creating a new kRows chunk when
  /// none is open. `decl` (optional) declares column types for typed lanes;
  /// when null the chunk starts with generic lanes sized on first append.
  ChangeBatch* OpenRows(const std::string& source,
                        const std::vector<DataType>* decl, size_t arity,
                        size_t reserve_hint);

  /// Appends one element event (convenience over OpenRows + AppendRow).
  /// Column types are inferred from the first row when opening a run; pass
  /// `decl` (AddElementTyped) when the declared schema is known — typed
  /// lanes then survive leading NULLs.
  void AddElement(const std::string& source, const Row& row, int8_t weight,
                  Timestamp ptime);
  void AddElementTyped(const std::string& source,
                       const std::vector<DataType>* decl, const Row& row,
                       int8_t weight, Timestamp ptime);

  /// Appends a watermark chunk, closing the source's open rows chunk.
  void AddWatermark(const std::string& source, Timestamp watermark,
                    Timestamp ptime);

  /// Explicit-sequence variants, for rebuilding a chunk list whose events
  /// already carry sequence numbers (history compaction). `seq` values must
  /// be strictly increasing across calls.
  void AddElementAt(uint64_t seq, const std::string& source,
                    const std::vector<DataType>* decl, const Row& row,
                    int8_t weight, Timestamp ptime);
  void AddWatermarkAt(uint64_t seq, const std::string& source,
                      Timestamp watermark, Timestamp ptime);

  /// Closes every open rows chunk (end of a push).
  void CloseAll();

  uint64_t next_seq() const { return next_seq_; }

 private:
  struct OpenEntry {
    std::string source;        // exact spelling
    std::string source_lower;  // cached: watermark closing compares lowered
    size_t chunk_index;
  };

  std::vector<InputChunk>* out_;
  uint64_t next_seq_;
  std::vector<OpenEntry> open_;
};

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_CHANGE_BATCH_H_
