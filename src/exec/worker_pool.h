#ifndef ONESQL_EXEC_WORKER_POOL_H_
#define ONESQL_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace onesql {
namespace exec {

/// A fixed pool of persistent worker threads executing fork-join epochs:
/// `Run(fn)` invokes `fn(worker_index)` on every worker concurrently and
/// blocks until all workers finish. Threads persist across epochs so the
/// per-batch cost is two condition-variable rounds, not thread creation.
///
/// The mutex handoff at the epoch boundaries gives the caller a
/// happens-before edge over everything the workers wrote (operator state,
/// capture buffers), so the merge step may read shard output without locks.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn(i)` for every worker index i in [0, size()), returning once
  /// every invocation completed. Not reentrant; single caller thread.
  void Run(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int index);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_WORKER_POOL_H_
