#ifndef ONESQL_EXEC_WORKER_POOL_H_
#define ONESQL_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/spsc_queue.h"

namespace onesql {
namespace exec {

/// A fixed pool of persistent per-shard worker threads, each fed by its own
/// bounded SPSC queue, executing *pipelined epochs*: the caller streams task
/// slices into the queues as it produces them (`Dispatch` / `DispatchAll`)
/// and workers drain asynchronously, so routing of slice k+1 overlaps the
/// processing of slice k. `EndEpoch` closes the epoch — it enqueues a marker
/// per worker and blocks until every worker has drained past it, giving the
/// caller an acquire edge over everything the workers wrote (operator state,
/// capture buffers), so a post-epoch merge may read shard output without
/// locks.
///
/// Tasks are plain function-pointer + context descriptors (16 bytes of
/// payload), not type-erased callables: steady-state dispatch allocates
/// nothing and copies nothing beyond the descriptor into the ring.
///
/// Single caller thread; not reentrant. Workers never call back into the
/// pool.
class WorkerPool {
 public:
  /// `fn(ctx, worker, begin, end)` — the caller-supplied slice processor.
  using TaskFn = void (*)(void* ctx, int worker, uint32_t begin, uint32_t end);

  explicit WorkerPool(int workers, size_t queue_capacity = 64);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues one slice for one worker; blocks only if that worker's queue
  /// is full (natural backpressure on the router).
  void Dispatch(int worker, TaskFn fn, void* ctx, uint32_t begin,
                uint32_t end);

  /// Enqueues the same slice for every worker.
  void DispatchAll(TaskFn fn, void* ctx, uint32_t begin, uint32_t end);

  /// Closes the current epoch: after every worker has executed all slices
  /// dispatched since the previous EndEpoch, returns with an acquire edge
  /// over their writes. Calling with no intervening Dispatch is legal (an
  /// empty epoch).
  void EndEpoch();

  /// Deepest any worker queue has been at dispatch time since construction
  /// (in tasks). Single-writer (the caller thread) but readable from any
  /// thread — feeds the backpressure gauge.
  uint64_t queue_depth_high_water() const {
    return depth_high_water_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    TaskFn fn = nullptr;  ///< null = control marker (see ctx)
    void* ctx = nullptr;  ///< for markers: null = epoch end, self = stop
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  struct PerWorker {
    explicit PerWorker(size_t capacity) : queue(capacity) {}
    SpscQueue<Task> queue;
    /// Epochs this worker has fully drained; release-stored by the worker,
    /// acquire-read by EndEpoch — the barrier's happens-before edge.
    alignas(64) std::atomic<uint64_t> epochs_done{0};
  };

  void WorkerLoop(int index);

  std::vector<std::unique_ptr<PerWorker>> workers_;
  uint64_t epochs_closed_ = 0;  // caller thread only
  std::atomic<uint64_t> depth_high_water_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
};

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_WORKER_POOL_H_
