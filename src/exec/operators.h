#ifndef ONESQL_EXEC_OPERATORS_H_
#define ONESQL_EXEC_OPERATORS_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "exec/accumulator.h"
#include "exec/operator.h"
#include "exec/row_map.h"
#include "plan/logical_plan.h"

namespace onesql {
namespace exec {

/// Entry point of a pipeline: forwards pushed source changes downstream.
/// The dataflow registers one SourceOperator per Scan; the same registered
/// relation may feed several scans (the paper's Listing 2 scans Bid twice).
class SourceOperator : public Operator {
 public:
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessBatch(int port, const ChangeBatch& batch) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "source"; }
};

/// Stateless row filter: symmetric for INSERTs and DELETEs.
class FilterOperator : public Operator {
 public:
  explicit FilterOperator(const plan::BoundExpr* predicate)
      : predicate_(predicate) {}
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessBatch(int port, const ChangeBatch& batch) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "filter"; }

 private:
  const plan::BoundExpr* predicate_;
  // Batch-path scratch (capacity reused across batches; downstream consumes
  // an emitted batch synchronously before the next one is built).
  std::vector<uint8_t> keep_;
  ChangeBatch out_batch_;
  Row scratch_row_;
};

/// Stateless projection.
class ProjectOperator : public Operator {
 public:
  explicit ProjectOperator(const std::vector<plan::BoundExprPtr>* exprs)
      : exprs_(exprs) {}
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessBatch(int port, const ChangeBatch& batch) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "project"; }

 private:
  /// Copies the first `n` weights/ptimes/seqs of `batch` into out_batch_.
  void FillMetaPrefix(const ChangeBatch& batch, size_t n);

  const std::vector<plan::BoundExprPtr>* exprs_;
  ChangeBatch out_batch_;
  Row scratch_row_;
};

/// Windowing TVF (Extension 3): appends wstart/wend. Stateless — DELETEs map
/// to the same windows as the INSERTs they retract.
class WindowOperator : public Operator {
 public:
  explicit WindowOperator(const plan::WindowNode* node) : node_(node) {}
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessBatch(int port, const ChangeBatch& batch) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "window"; }

  /// Window starts containing event time `t` for the given parameters, in
  /// ascending order. Exposed for property tests.
  static std::vector<Timestamp> AssignWindows(Timestamp t, Interval dur,
                                              Interval hop, Interval offset);

 private:
  /// Appends the window starts containing `t` to `out` (no allocation in
  /// the common tumble case; `out` is caller scratch).
  static void AssignWindowsInto(Timestamp t, Interval dur, Interval hop,
                                Interval offset, std::vector<int64_t>* out);

  const plan::WindowNode* node_;
  ChangeBatch out_batch_;
  std::vector<int64_t> starts_scratch_;
};

/// Time-progressing predicate (Section 8 future work): keeps the sliding
/// tail `et_col > CURRENT_TIME - horizon` of the stream, where CURRENT_TIME
/// is the relation's event-time clock (its watermark). Rows pass through on
/// arrival and are retracted once the watermark passes et + horizon.
class TemporalFilterOperator : public Operator {
 public:
  explicit TemporalFilterOperator(const plan::TemporalFilterNode* node)
      : node_(node) {}
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "temporal_filter"; }
  size_t StateBytes() const override;
  Status SaveState(state::Writer* w) const override;
  Status LoadState(state::Reader* r, const StateKeyFilter* filter) override;

  size_t live_rows() const { return live_.size(); }
  int64_t expired_rows() const { return expired_; }

 private:
  const plan::TemporalFilterNode* node_;
  std::multimap<int64_t, Row> live_;  // keyed by event time (ms)
  Timestamp watermark_ = Timestamp::Min();
  int64_t expired_ = 0;
};

/// Session windowing (the paper's Section 8 future work: "transitive
/// closure sessions" and "keyed sessions"). Appends wstart/wend columns
/// like Tumble/Hop, but sessions are data-driven: rows whose event times
/// are within `gap` of each other (per optional key) share a session
/// [min_t, max_t + gap). Inserting a row may merge sessions and deleting
/// one may split them, so previously emitted rows are retracted and
/// re-emitted with their new bounds. Sessions whose end passes the
/// watermark are final and their state is released.
class SessionOperator : public Operator {
 public:
  SessionOperator(const plan::WindowNode* node, Interval allowed_lateness)
      : node_(node), allowed_lateness_(allowed_lateness) {}
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "session"; }
  size_t StateBytes() const override;
  Status SaveState(state::Writer* w) const override;
  Status LoadState(state::Reader* r, const StateKeyFilter* filter) override;

  /// Live (non-final) sessions across all keys.
  size_t NumSessions() const;
  int64_t late_drops() const { return late_drops_; }

 private:
  struct Session {
    Timestamp start;  // min member event time
    Timestamp end;    // max member event time + gap
    std::multimap<Timestamp, Row> rows;
  };
  struct KeyState {
    std::map<Timestamp, Session> sessions;  // by start; disjoint intervals
  };

  Row KeyOf(const Row& row) const;
  Status EmitRow(ChangeKind kind, const Row& row, Timestamp wstart,
                 Timestamp wend, Timestamp ptime);
  Status HandleInsert(KeyState* ks, const Row& row, Timestamp t,
                      Timestamp ptime);
  Status HandleDelete(KeyState* ks, const Row& row, Timestamp t,
                      Timestamp ptime);

  const plan::WindowNode* node_;
  Interval allowed_lateness_{0};
  std::unordered_map<Row, KeyState, RowHash, RowEq> keys_;
  Timestamp watermark_ = Timestamp::Min();
  int64_t late_drops_ = 0;
};

/// Grouped aggregation over a changelog. Emits retraction pairs
/// (DELETE old row, INSERT new row) whenever a group's output changes —
/// never emitting when the output row is unchanged. Implements Extension 2:
/// once the watermark passes every event-time grouping key of a group, the
/// group is complete; its state is purged and late inputs are dropped.
class AggregateOperator : public Operator {
 public:
  AggregateOperator(const plan::AggregateNode* node,
                    Interval allowed_lateness);
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessBatch(int port, const ChangeBatch& batch) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "aggregate"; }
  size_t StateBytes() const override;
  Status SaveState(state::Writer* w) const override;
  Status LoadState(state::Reader* r, const StateKeyFilter* filter) override;

  /// Number of live groups (state-size benchmarks).
  size_t NumGroups() const { return groups_.size(); }
  /// Inputs dropped because their group was already complete.
  int64_t late_drops() const { return late_drops_; }

 private:
  struct GroupState {
    std::vector<AccumulatorPtr> accumulators;
    int64_t row_count = 0;
    bool has_output = false;
    Row last_output;
  };

  Result<Row> EvalKey(const Row& input) const;
  /// Builds the accumulator set for a fresh group.
  Status MakeGroup(GroupState* state);
  /// True when every event-time key of `key` is at or below the watermark.
  bool IsComplete(const Row& key, Timestamp watermark) const;
  Status EmitGroupUpdate(GroupState* state, const Row& key, Timestamp ptime);
  /// Batch-path per-row core: the key row, its hash, and the per-call
  /// argument values are already evaluated (by vectorized kernels, which
  /// cannot fail — so pre-evaluation cannot reorder errors).
  Status ApplyRow(ChangeKind kind, const Row& key, size_t hash,
                  const Value* args, Timestamp ptime);

  const plan::AggregateNode* node_;
  Interval allowed_lateness_{0};
  FlatRowMap<GroupState> groups_;
  Timestamp watermark_ = Timestamp::Min();
  int64_t late_drops_ = 0;
  // Batch-path scratch: key/argument columns evaluated a vector at a time.
  std::vector<ColumnVector> key_cols_;
  std::vector<ColumnVector> arg_cols_;
  std::vector<size_t> hash_scratch_;
  std::vector<Value> arg_scratch_;
  Row key_scratch_;
};

/// Materializing binary join (inner/cross). Both inputs are kept as
/// key-indexed multisets; changes on one side probe the other and emit the
/// corresponding insertions/retractions of concatenated rows. Optional
/// purge specs release state as the watermark advances (the Section 5
/// lesson on efficient operations over watermarked event-time attributes).
class JoinOperator : public Operator {
 public:
  explicit JoinOperator(const plan::JoinNode* node);
  Status ProcessElement(int port, const Change& change) override;
  Status ProcessWatermark(int port, Timestamp watermark,
                     Timestamp ptime) override;
  const char* Name() const override { return "join"; }
  size_t StateBytes() const override;
  Status SaveState(state::Writer* w) const override;
  Status LoadState(state::Reader* r, const StateKeyFilter* filter) override;

  size_t left_rows() const { return left_.size; }
  size_t right_rows() const { return right_.size; }

 private:
  struct SideState {
    // key -> (row -> multiplicity)
    std::unordered_map<Row, std::map<Row, int64_t, RowLess>, RowHash, RowEq>
        buckets;
    // event time (ms) -> rows pending purge, parallel to `buckets`.
    std::multimap<int64_t, std::pair<Row, Row>> purge_index;  // (key, row)
    size_t size = 0;
  };

  Row KeyOf(const Row& row, bool left) const;
  Status Probe(const Change& change, const Row& key, bool from_left);
  Status ApplyToState(SideState* side, const Change& change, const Row& key,
                      const std::optional<plan::JoinPurgeSpec>& purge);
  Status PurgeSide(SideState* side,
                   const std::optional<plan::JoinPurgeSpec>& purge,
                   Timestamp watermark);
  static void SaveSide(const SideState& side, state::Writer* w);
  static Status LoadSide(SideState* side, state::Reader* r,
                         const StateKeyFilter* filter);

  const plan::JoinNode* node_;
  SideState left_;
  SideState right_;
  WatermarkMerger merger_{2};
};

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_OPERATORS_H_
