#ifndef ONESQL_EXEC_DATAFLOW_H_
#define ONESQL_EXEC_DATAFLOW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operators.h"
#include "exec/sink.h"
#include "plan/logical_plan.h"

namespace onesql {
namespace exec {

/// One input event for a dataflow runtime: the execution-layer mirror of the
/// engine's feed events, so batches can be handed to a runtime wholesale.
struct InputEvent {
  enum class Kind { kInsert, kDelete, kWatermark };
  Kind kind = Kind::kInsert;
  std::string source;
  Timestamp ptime;
  Row row;              // kInsert / kDelete
  Timestamp watermark;  // kWatermark
};

/// A compiled copy of a query's operator chain (everything upstream of the
/// materialization sink). The chain holds only const pointers into the
/// owning QueryPlan, so several copies — one per shard — can share one plan.
struct CompiledChain {
  std::vector<std::unique_ptr<Operator>> operators;
  std::unordered_map<std::string, std::vector<SourceOperator*>> sources;
  std::vector<AggregateOperator*> aggregates;
  std::vector<JoinOperator*> joins;

  size_t StateBytes() const;

  /// Attaches per-operator instruments from `ctx` under `query_label`. The
  /// `op` label is the operator's kind name, suffixed `_2`, `_3`, ... for
  /// repeats in chain-build order — deterministic, so every shard copy of a
  /// chain position resolves to the same shared instrument bundle.
  void AttachObs(obs::ObsContext* ctx, const std::string& query_label);

  /// Serializes every operator's state, in the chain's deterministic build
  /// order, as one length-prefixed blob per operator.
  Status SaveState(state::Writer* w) const;

  /// Merges a saved chain section into this chain: operator blobs are
  /// length-prefixed, each handed to the operator at the same position.
  /// `filter` redistributes keyed state at restore time (see
  /// StateKeyFilter); the chain structure (a pure function of the plan) must
  /// match the saved one, or DataLoss is returned.
  Status LoadState(state::Reader* r, const StateKeyFilter* filter);
};

/// Compiles the plan tree into an operator chain terminating at `terminal`.
/// Fails with NotImplemented for plan shapes the streaming runtime does not
/// support (e.g. LEFT JOIN).
Result<CompiledChain> CompileChain(const plan::QueryPlan& plan,
                                   Operator* terminal);

/// Derives the sink's materialization controls from the plan's EMIT clause,
/// validating the completeness/version-key requirements.
Result<SinkConfig> MakeSinkConfig(const plan::QueryPlan& plan);

/// An executable continuous query, driven by pushing source changes and
/// watermarks in processing-time order. Two implementations exist: the
/// sequential `Dataflow` (one operator chain) and the key-partitioned
/// `ShardedDataflow` (N chains behind a deterministic merge; see
/// sharded_dataflow.h). Both materialize into a single MaterializationSink
/// and are observationally identical — the sharded runtime's merge keeps
/// emissions bit-identical to the sequential run.
class DataflowRuntime {
 public:
  virtual ~DataflowRuntime() = default;

  /// Pushes an insertion into relation `source` at processing time `ptime`.
  /// Pushes must arrive in non-decreasing ptime order. Unknown sources are
  /// ignored (the query does not read them).
  virtual Status PushRow(const std::string& source, Timestamp ptime,
                         Row row) = 0;

  /// Pushes a retraction of a previously inserted row.
  virtual Status PushDelete(const std::string& source, Timestamp ptime,
                            Row row) = 0;

  /// Advances relation `source`'s watermark at processing time `ptime`.
  virtual Status PushWatermark(const std::string& source, Timestamp ptime,
                               Timestamp watermark) = 0;

  /// Pushes a whole batch of events (non-decreasing ptime). The sharded
  /// runtime dispatches the batch across shards behind one barrier, so
  /// feeding batches amortizes the per-event synchronization cost.
  virtual Status PushBatch(const std::vector<InputEvent>& events) = 0;

  /// Pushes pre-chunked input: columnar element runs, watermark advances and
  /// singleton events, ordered across chunks by per-event sequence number
  /// (see ChunkBuilder). This is the batch hot path — single-source chains
  /// consume whole ChangeBatches through the vectorized operator kernels;
  /// everything else decomposes back to the scalar per-event delivery in
  /// exact sequence order, so output bytes are identical either way.
  virtual Status PushChunks(const std::vector<const InputChunk*>& chunks) = 0;

  /// Advances the processing-time clock to `ptime`, firing all AFTER DELAY
  /// timers due at or before it. Call before observing results at `ptime`.
  virtual Status AdvanceTo(Timestamp ptime) = 0;

  /// True if this query reads `source`.
  virtual bool ReadsSource(const std::string& source) const = 0;

  virtual const MaterializationSink& sink() const = 0;
  virtual const plan::QueryPlan& plan() const = 0;

  /// Total bytes of operator state (aggregations, joins, sink), for the
  /// state-size benchmarks.
  virtual size_t StateBytes() const = 0;

  /// Number of parallel shards (1 for the sequential runtime).
  virtual int shard_count() const = 0;

  /// Serializes all runtime state (operator chains, sink, input sequence
  /// counter) into `w`. Must be called at a feed boundary (between pushes).
  /// The blob layout is shared by both runtimes: a varint chain count, one
  /// length-prefixed section per chain, a length-prefixed sink section, and
  /// the next input sequence number — so state saved at N shards can be
  /// loaded at any other shard count (each loading chain takes the keyed
  /// entries it owns; see StateKeyFilter).
  virtual Status SaveState(state::Writer* w) const = 0;

  /// Restores state saved by SaveState into a freshly built runtime for the
  /// same plan. Structural mismatch or damage yields Status::DataLoss.
  virtual Status LoadState(state::Reader* r) = 0;

  /// Introspection for tests and benchmarks. For the sharded runtime these
  /// are flattened across shards (shard-major order).
  virtual const std::vector<AggregateOperator*>& aggregates() const = 0;
  virtual const std::vector<JoinOperator*>& joins() const = 0;

  /// Attaches observability: per-operator and sink instruments resolved
  /// from `ctx` under `query_label`, and trace spans tagged with
  /// `query_index`. A null context (or one with everything disabled) leaves
  /// all hooks detached — the default state. Call before pushing data.
  virtual void AttachObs(obs::ObsContext* ctx, const std::string& query_label,
                         int query_index) = 0;

  /// Publishes instantaneous gauges — per-operator state bytes (summed
  /// across shards), sink timer-queue depth, pending panes, snapshot rows.
  /// Called single-threaded at snapshot time; a no-op when detached.
  virtual void SampleObsGauges() = 0;

  /// Zeroes the same gauges SampleObsGauges publishes. Called when the
  /// runtime is being torn down (Engine::DropQuery) so the exposition stops
  /// reporting state for a dead operator tree. A no-op when detached.
  virtual void ZeroObsGauges() = 0;

  /// Live operator instances in this runtime, counting every shard copy of
  /// every chain position plus the sink. The engine sums this into the
  /// `onesql_engine_operators` gauge — the number the multi-tenant sharing
  /// tests pin (10k subscribers behind one shared plan must not move it).
  virtual size_t NumOperators() const = 0;
};

/// The sequential runtime: one operator chain feeding the sink directly.
class Dataflow : public DataflowRuntime {
 public:
  /// Compiles the plan. Fails with NotImplemented for plan shapes the
  /// streaming runtime does not support (e.g. LEFT JOIN).
  static Result<std::unique_ptr<Dataflow>> Build(plan::QueryPlan plan);

  Status PushRow(const std::string& source, Timestamp ptime, Row row) override;
  Status PushDelete(const std::string& source, Timestamp ptime,
                    Row row) override;
  Status PushWatermark(const std::string& source, Timestamp ptime,
                       Timestamp watermark) override;
  Status PushBatch(const std::vector<InputEvent>& events) override;
  Status PushChunks(const std::vector<const InputChunk*>& chunks) override;
  Status AdvanceTo(Timestamp ptime) override;
  bool ReadsSource(const std::string& source) const override;

  const MaterializationSink& sink() const override { return *sink_; }
  const plan::QueryPlan& plan() const override { return plan_; }
  size_t StateBytes() const override;
  int shard_count() const override { return 1; }
  Status SaveState(state::Writer* w) const override;
  Status LoadState(state::Reader* r) override;
  const std::vector<AggregateOperator*>& aggregates() const override {
    return chain_.aggregates;
  }
  const std::vector<JoinOperator*>& joins() const override {
    return chain_.joins;
  }
  void AttachObs(obs::ObsContext* ctx, const std::string& query_label,
                 int query_index) override;
  void SampleObsGauges() override;
  void ZeroObsGauges() override;
  size_t NumOperators() const override { return chain_.operators.size() + 1; }

 private:
  Dataflow() = default;

  Status PushChange(const std::string& source, const Change& change);
  /// True when the chain reads exactly one source through exactly one scan,
  /// and the chunks relevant to it arrive in strictly ascending seq order —
  /// the conditions under which whole batches flow through OnBatch without
  /// changing the per-event delivery order.
  bool CanPushWholeBatches(
      const std::vector<const InputChunk*>& chunks) const;
  Status PushChunksWhole(const std::vector<const InputChunk*>& chunks);
  Status PushChunksMerged(const std::vector<const InputChunk*>& chunks);

  plan::QueryPlan plan_;
  std::unique_ptr<MaterializationSink> sink_holder_;
  MaterializationSink* sink_ = nullptr;
  CompiledChain chain_;
  obs::TraceRecorder* trace_ = nullptr;
  int32_t query_tag_ = -1;
  /// Steady-clock attach time, the denominator epoch for rows/s gauges.
  uint64_t profile_attach_us_ = 0;
};

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_DATAFLOW_H_
