#ifndef ONESQL_EXEC_DATAFLOW_H_
#define ONESQL_EXEC_DATAFLOW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operators.h"
#include "exec/sink.h"
#include "plan/logical_plan.h"

namespace onesql {
namespace exec {

/// An executable continuous query: the physical operator graph compiled from
/// a QueryPlan, driven by pushing source changes and watermarks in
/// processing-time order. Owns the plan (operators reference its bound
/// expressions).
class Dataflow {
 public:
  /// Compiles the plan. Fails with NotImplemented for plan shapes the
  /// streaming runtime does not support (e.g. LEFT JOIN).
  static Result<std::unique_ptr<Dataflow>> Build(plan::QueryPlan plan);

  /// Pushes an insertion into relation `source` at processing time `ptime`.
  /// Pushes must arrive in non-decreasing ptime order. Unknown sources are
  /// ignored (the query does not read them).
  Status PushRow(const std::string& source, Timestamp ptime, Row row);

  /// Pushes a retraction of a previously inserted row.
  Status PushDelete(const std::string& source, Timestamp ptime, Row row);

  /// Advances relation `source`'s watermark at processing time `ptime`.
  Status PushWatermark(const std::string& source, Timestamp ptime,
                       Timestamp watermark);

  /// Advances the processing-time clock to `ptime`, firing all AFTER DELAY
  /// timers due at or before it. Call before observing results at `ptime`.
  Status AdvanceTo(Timestamp ptime);

  /// True if this query reads `source`.
  bool ReadsSource(const std::string& source) const;

  const MaterializationSink& sink() const { return *sink_; }
  const plan::QueryPlan& plan() const { return plan_; }

  /// Total bytes of operator state (aggregations, joins, sink), for the
  /// state-size benchmarks.
  size_t StateBytes() const;

  /// Introspection for tests and benchmarks.
  const std::vector<AggregateOperator*>& aggregates() const {
    return aggregates_;
  }
  const std::vector<JoinOperator*>& joins() const { return joins_; }

 private:
  Dataflow() = default;

  Status BuildNode(const plan::LogicalNode& node, Operator* out, int port);
  Status PushChange(const std::string& source, const Change& change);

  plan::QueryPlan plan_;
  std::vector<std::unique_ptr<Operator>> operators_;
  MaterializationSink* sink_ = nullptr;
  std::unordered_map<std::string, std::vector<SourceOperator*>> sources_;
  std::vector<AggregateOperator*> aggregates_;
  std::vector<JoinOperator*> joins_;
};

}  // namespace exec
}  // namespace onesql

#endif  // ONESQL_EXEC_DATAFLOW_H_
