#include "exec/accumulator.h"

#include <map>

namespace onesql {
namespace exec {

namespace {

using plan::AggFn;

/// Shared serialization for the value->multiplicity maps of MIN/MAX and
/// DISTINCT: varint size, then (value, signed count) pairs in the map's
/// deterministic value order.
template <typename Map>
void SaveCountMap(const Map& map, state::Writer* w) {
  w->PutVarint(map.size());
  for (const auto& [value, count] : map) {
    w->PutValue(value);
    w->PutSigned(count);
  }
}

template <typename Map>
Status LoadCountMap(Map* map, state::Reader* r) {
  ONESQL_ASSIGN_OR_RETURN(uint64_t n, r->ReadVarint());
  if (n > r->remaining()) {
    return Status::DataLoss("impossible count-map size in checkpoint");
  }
  for (uint64_t i = 0; i < n; ++i) {
    ONESQL_ASSIGN_OR_RETURN(Value value, r->ReadValue());
    ONESQL_ASSIGN_OR_RETURN(int64_t count, r->ReadSigned());
    if (count <= 0) {
      return Status::DataLoss("non-positive multiplicity in checkpoint");
    }
    (*map)[value] += count;
  }
  return Status::OK();
}

class CountStarAccumulator : public Accumulator {
 public:
  Status Add(const Value&) override {
    ++count_;
    return Status::OK();
  }
  Status Retract(const Value&) override {
    if (count_ == 0) return Status::Internal("COUNT(*) retract below zero");
    --count_;
    return Status::OK();
  }
  Value Current() const override { return Value::Int64(count_); }
  size_t StateBytes() const override { return sizeof(count_); }
  void SaveState(state::Writer* w) const override { w->PutSigned(count_); }
  Status LoadState(state::Reader* r) override {
    ONESQL_ASSIGN_OR_RETURN(count_, r->ReadSigned());
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class CountAccumulator : public Accumulator {
 public:
  Status Add(const Value& v) override {
    if (!v.is_null()) ++count_;
    return Status::OK();
  }
  Status Retract(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (count_ == 0) return Status::Internal("COUNT retract below zero");
    --count_;
    return Status::OK();
  }
  Value Current() const override { return Value::Int64(count_); }
  size_t StateBytes() const override { return sizeof(count_); }
  void SaveState(state::Writer* w) const override { w->PutSigned(count_); }
  Status LoadState(state::Reader* r) override {
    ONESQL_ASSIGN_OR_RETURN(count_, r->ReadSigned());
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

/// SUM with exact integer arithmetic for BIGINT and double otherwise; AVG is
/// SUM/COUNT at read time.
class SumAvgAccumulator : public Accumulator {
 public:
  SumAvgAccumulator(bool is_avg, bool integer)
      : is_avg_(is_avg), integer_(integer) {}

  Status Add(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ONESQL_ASSIGN_OR_RETURN(double d, v.ToNumeric());
    if (integer_ && v.type() == DataType::kBigint) {
      int_sum_ += v.AsInt64();
    } else {
      integer_ = false;
    }
    double_sum_ += d;
    ++count_;
    return Status::OK();
  }

  Status Retract(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ONESQL_ASSIGN_OR_RETURN(double d, v.ToNumeric());
    if (count_ == 0) return Status::Internal("SUM retract below zero");
    if (integer_ && v.type() == DataType::kBigint) int_sum_ -= v.AsInt64();
    double_sum_ -= d;
    if (--count_ == 0) {
      // A fully retracted accumulator must be indistinguishable from a fresh
      // one. Float subtraction is not exact inverse addition, so without this
      // reset a long insert/retract history leaves an epsilon (or -0.0)
      // residue in double_sum_ that pollutes every SUM/AVG after the group
      // refills.
      int_sum_ = 0;
      double_sum_ = 0.0;
    }
    return Status::OK();
  }

  Value Current() const override {
    if (count_ == 0) return Value::Null();
    if (is_avg_) return Value::Double(double_sum_ / static_cast<double>(count_));
    if (integer_) return Value::Int64(int_sum_);
    return Value::Double(double_sum_);
  }

  size_t StateBytes() const override { return 3 * sizeof(int64_t); }

  void SaveState(state::Writer* w) const override {
    w->PutBool(integer_);
    w->PutSigned(int_sum_);
    w->PutDouble(double_sum_);
    w->PutSigned(count_);
  }
  Status LoadState(state::Reader* r) override {
    ONESQL_ASSIGN_OR_RETURN(integer_, r->ReadBool());
    ONESQL_ASSIGN_OR_RETURN(int_sum_, r->ReadSigned());
    ONESQL_ASSIGN_OR_RETURN(double_sum_, r->ReadDouble());
    ONESQL_ASSIGN_OR_RETURN(count_, r->ReadSigned());
    return Status::OK();
  }

 private:
  bool is_avg_;
  bool integer_;
  int64_t int_sum_ = 0;
  double double_sum_ = 0;
  int64_t count_ = 0;
};

/// MIN/MAX keep an ordered multiset so retraction is exact — the price the
/// paper alludes to for non-invertible aggregations over changelogs.
class MinMaxAccumulator : public Accumulator {
 public:
  explicit MinMaxAccumulator(bool is_min) : is_min_(is_min) {}

  Status Add(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ++values_[v];
    return Status::OK();
  }

  Status Retract(const Value& v) override {
    if (v.is_null()) return Status::OK();
    auto it = values_.find(v);
    if (it == values_.end()) {
      return Status::Internal("MIN/MAX retract of absent value " +
                              v.ToString());
    }
    if (--it->second == 0) values_.erase(it);
    return Status::OK();
  }

  Value Current() const override {
    if (values_.empty()) return Value::Null();
    return is_min_ ? values_.begin()->first : values_.rbegin()->first;
  }

  size_t StateBytes() const override {
    return values_.size() * (sizeof(Value) + sizeof(int64_t) + 48);
  }

  void SaveState(state::Writer* w) const override {
    SaveCountMap(values_, w);
  }
  Status LoadState(state::Reader* r) override {
    return LoadCountMap(&values_, r);
  }

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  bool is_min_;
  std::map<Value, int64_t, ValueLess> values_;
};

/// DISTINCT decorator: forwards each distinct value exactly once to the
/// underlying accumulator, tracking multiplicities.
class DistinctAccumulator : public Accumulator {
 public:
  explicit DistinctAccumulator(AccumulatorPtr inner)
      : inner_(std::move(inner)) {}

  Status Add(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (++counts_[v] == 1) return inner_->Add(v);
    return Status::OK();
  }

  Status Retract(const Value& v) override {
    if (v.is_null()) return Status::OK();
    auto it = counts_.find(v);
    if (it == counts_.end()) {
      return Status::Internal("DISTINCT retract of absent value");
    }
    if (--it->second == 0) {
      counts_.erase(it);
      return inner_->Retract(v);
    }
    return Status::OK();
  }

  Value Current() const override { return inner_->Current(); }

  size_t StateBytes() const override {
    return inner_->StateBytes() +
           counts_.size() * (sizeof(Value) + sizeof(int64_t) + 48);
  }

  void SaveState(state::Writer* w) const override {
    state::Writer nested;
    inner_->SaveState(&nested);
    w->PutBlob(nested);
    SaveCountMap(counts_, w);
  }
  Status LoadState(state::Reader* r) override {
    ONESQL_ASSIGN_OR_RETURN(state::Reader nested, r->ReadBlob());
    ONESQL_RETURN_NOT_OK(inner_->LoadState(&nested));
    ONESQL_RETURN_NOT_OK(nested.ExpectEnd());
    return LoadCountMap(&counts_, r);
  }

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  AccumulatorPtr inner_;
  std::map<Value, int64_t, ValueLess> counts_;
};

}  // namespace

Result<AccumulatorPtr> MakeAccumulator(const plan::AggregateCall& call) {
  AccumulatorPtr base;
  switch (call.fn) {
    case AggFn::kCountStar:
      base = std::make_unique<CountStarAccumulator>();
      break;
    case AggFn::kCount:
      base = std::make_unique<CountAccumulator>();
      break;
    case AggFn::kSum:
      base = std::make_unique<SumAvgAccumulator>(
          /*is_avg=*/false, call.result_type == DataType::kBigint);
      break;
    case AggFn::kAvg:
      base = std::make_unique<SumAvgAccumulator>(/*is_avg=*/true, false);
      break;
    case AggFn::kMin:
      base = std::make_unique<MinMaxAccumulator>(/*is_min=*/true);
      break;
    case AggFn::kMax:
      base = std::make_unique<MinMaxAccumulator>(/*is_min=*/false);
      break;
  }
  if (call.distinct && call.fn != AggFn::kCountStar) {
    base = std::make_unique<DistinctAccumulator>(std::move(base));
  }
  return base;
}

}  // namespace exec
}  // namespace onesql
