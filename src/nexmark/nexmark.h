#ifndef ONESQL_NEXMARK_NEXMARK_H_
#define ONESQL_NEXMARK_NEXMARK_H_

#include <string>
#include <vector>

#include "engine/engine.h"

namespace onesql {
namespace nexmark {

/// The NEXMark benchmark workload (Tucker et al.), the paper's motivating
/// example: an online auction platform with three streams — Person, Auction,
/// Bid — and a static Category table. The schemas are adapted to this
/// engine's type system with explicit event-time columns.

Schema PersonSchema();    // (dateTime*, id, name, state)
Schema AuctionSchema();   // (dateTime*, id, seller, category, itemName)
Schema BidSchema();       // (bidtime*, auction, bidder, price)
Schema CategorySchema();  // (id, name) — static

/// Registers the three streams and the Category table with an engine.
Status RegisterNexmark(Engine* engine);

/// How the generator emits watermarks.
enum class WatermarkStrategy {
  /// Perfect: the watermark never admits a late row (lower bound over all
  /// future event times). Requires buffering knowledge only a generator has.
  kPerfect,
  /// Heuristic: watermark = max observed event time - slack, the realistic
  /// strategy; rows displaced further than the slack arrive late.
  kHeuristic,
};

struct GeneratorConfig {
  uint32_t seed = 42;
  /// Total events across the three streams (1 person : 3 auctions : 46 bids,
  /// the standard NEXMark proportions).
  int num_events = 1000;
  /// Mean event-time gap between consecutive events.
  Interval mean_event_gap = Interval::Millis(500);
  /// Arrival disorder: each event may arrive up to this many positions away
  /// from event-time order.
  int max_disorder = 0;
  /// Watermark emission period (every N events).
  int watermark_period = 10;
  WatermarkStrategy watermark_strategy = WatermarkStrategy::kPerfect;
  /// Slack for the heuristic strategy.
  Interval heuristic_slack = Interval::Seconds(5);
  int num_categories = 10;
};

/// Deterministic NEXMark event generator. Produces a processing-time-ordered
/// feed (inserts interleaved with watermarks) ready for Engine::Feed.
class Generator {
 public:
  explicit Generator(GeneratorConfig config);

  /// Generates the full feed.
  std::vector<FeedEvent> Generate();

  /// Static Category table contents.
  std::vector<Row> CategoryRows() const;

  /// Statistics from the last Generate() call.
  int persons() const { return persons_; }
  int auctions() const { return auctions_; }
  int bids() const { return bids_; }

 private:
  GeneratorConfig config_;
  int persons_ = 0;
  int auctions_ = 0;
  int bids_ = 0;
};

/// NEXMark queries expressed in the paper's proposed dialect. Q4 and Q5 are
/// documented simplifications (see DESIGN.md): the engine has no correlated
/// temporal-table access, so auction-close semantics are replaced with
/// tumbling-window aggregation, which exercises the same operator pipeline.

/// Q1 — currency conversion: every bid, price converted dollar -> euro.
std::string Q1();
/// Q2 — selection: bids on a sampled subset of auctions.
std::string Q2();
/// Q3 — local item suggestion: sellers in a given state with their auctions.
std::string Q3();
/// Q4 (simplified) — average bid price per category per 10-minute window.
std::string Q4();
/// Q5 (simplified) — hot items: auctions with the most bids per hopping
/// window.
std::string Q5();
/// Q7 — highest bid per 10-minute window (the paper's Listing 2).
std::string Q7(const std::string& emit = "");

}  // namespace nexmark
}  // namespace onesql

#endif  // ONESQL_NEXMARK_NEXMARK_H_
