#include "nexmark/nexmark.h"

#include <algorithm>
#include <random>

namespace onesql {
namespace nexmark {

Schema PersonSchema() {
  return Schema({{"dateTime", DataType::kTimestamp, true},
                 {"id", DataType::kBigint},
                 {"name", DataType::kVarchar},
                 {"state", DataType::kVarchar}});
}

Schema AuctionSchema() {
  return Schema({{"dateTime", DataType::kTimestamp, true},
                 {"id", DataType::kBigint},
                 {"seller", DataType::kBigint},
                 {"category", DataType::kBigint},
                 {"itemName", DataType::kVarchar}});
}

Schema BidSchema() {
  return Schema({{"bidtime", DataType::kTimestamp, true},
                 {"auction", DataType::kBigint},
                 {"bidder", DataType::kBigint},
                 {"price", DataType::kBigint}});
}

Schema CategorySchema() {
  return Schema({{"id", DataType::kBigint}, {"name", DataType::kVarchar}});
}

Status RegisterNexmark(Engine* engine) {
  ONESQL_RETURN_NOT_OK(engine->RegisterStream("Person", PersonSchema()));
  ONESQL_RETURN_NOT_OK(engine->RegisterStream("Auction", AuctionSchema()));
  ONESQL_RETURN_NOT_OK(engine->RegisterStream("Bid", BidSchema()));
  Generator gen(GeneratorConfig{});
  return engine->RegisterTable("Category", CategorySchema(),
                               gen.CategoryRows());
}

Generator::Generator(GeneratorConfig config) : config_(config) {}

std::vector<Row> Generator::CategoryRows() const {
  static const char* const kNames[] = {
      "art",   "books", "cars",  "games", "home",
      "music", "pets",  "sport", "tech",  "toys"};
  std::vector<Row> rows;
  for (int i = 0; i < config_.num_categories; ++i) {
    rows.push_back(
        {Value::Int64(i),
         Value::String(kNames[i % (sizeof(kNames) / sizeof(kNames[0]))])});
  }
  return rows;
}

std::vector<FeedEvent> Generator::Generate() {
  std::mt19937 rng(config_.seed);
  static const char* const kStates[] = {"OR", "CA", "ID", "WA", "NV"};
  static const char* const kNames[] = {"alice", "bob",  "carol",
                                       "dave",  "erin", "frank"};

  persons_ = auctions_ = bids_ = 0;

  struct Pending {
    std::string source;
    Timestamp event_time;
    Row row;
  };
  std::vector<Pending> events;
  events.reserve(static_cast<size_t>(config_.num_events));

  std::vector<int64_t> person_ids;
  std::vector<int64_t> auction_ids;
  int64_t next_person = 1000;
  int64_t next_auction = 5000;

  int64_t t = Timestamp::FromHMS(8, 0).millis();
  const int64_t gap = std::max<int64_t>(1, config_.mean_event_gap.millis());

  for (int i = 0; i < config_.num_events; ++i) {
    t += 1 + static_cast<int64_t>(rng() % static_cast<uint64_t>(2 * gap));
    const Timestamp event_time(t);
    // Standard NEXMark proportions: 1 person : 3 auctions : 46 bids per 50
    // events — with persons/auctions forced early so references resolve.
    const int slot = i % 50;
    if (slot == 0 || person_ids.empty()) {
      const int64_t id = next_person++;
      person_ids.push_back(id);
      events.push_back(Pending{
          "Person", event_time,
          Row{Value::Time(event_time), Value::Int64(id),
              Value::String(kNames[rng() % 6]),
              Value::String(kStates[rng() % 5])}});
      ++persons_;
    } else if (slot <= 3 || auction_ids.empty()) {
      const int64_t id = next_auction++;
      auction_ids.push_back(id);
      events.push_back(Pending{
          "Auction", event_time,
          Row{Value::Time(event_time), Value::Int64(id),
              Value::Int64(person_ids[rng() % person_ids.size()]),
              Value::Int64(static_cast<int64_t>(
                  rng() % static_cast<uint64_t>(config_.num_categories))),
              Value::String("item-" + std::to_string(id))}});
      ++auctions_;
    } else {
      events.push_back(Pending{
          "Bid", event_time,
          Row{Value::Time(event_time),
              Value::Int64(auction_ids[rng() % auction_ids.size()]),
              Value::Int64(person_ids[rng() % person_ids.size()]),
              Value::Int64(1 + static_cast<int64_t>(rng() % 10000))}});
      ++bids_;
    }
  }

  // Bounded shuffle for arrival disorder.
  if (config_.max_disorder > 0) {
    for (int i = static_cast<int>(events.size()) - 1; i > 0; --i) {
      const int lo = std::max(0, i - config_.max_disorder);
      const int j = lo + static_cast<int>(rng() % (i - lo + 1));
      std::swap(events[i], events[j]);
    }
  }

  // min_future[i] = min event time among events[i..] (for perfect
  // watermarks).
  std::vector<Timestamp> min_future(events.size() + 1, Timestamp::Max());
  for (int i = static_cast<int>(events.size()) - 1; i >= 0; --i) {
    min_future[i] = std::min(min_future[i + 1], events[i].event_time);
  }

  std::vector<FeedEvent> feed;
  feed.reserve(events.size() + events.size() / config_.watermark_period + 1);
  Timestamp ptime = Timestamp::FromHMS(8, 0);
  Timestamp max_seen = Timestamp::Min();
  Timestamp last_wm = Timestamp::Min();
  for (size_t i = 0; i < events.size(); ++i) {
    ptime = ptime + Interval::Millis(100);
    max_seen = std::max(max_seen, events[i].event_time);
    FeedEvent fe;
    fe.kind = FeedEvent::Kind::kInsert;
    fe.source = events[i].source;
    fe.ptime = ptime;
    fe.row = std::move(events[i].row);
    feed.push_back(std::move(fe));

    if (config_.watermark_period > 0 &&
        (i + 1) % static_cast<size_t>(config_.watermark_period) == 0) {
      Timestamp wm;
      if (config_.watermark_strategy == WatermarkStrategy::kPerfect) {
        wm = min_future[i + 1] - Interval::Millis(1);
      } else {
        wm = max_seen - config_.heuristic_slack;
      }
      if (wm > last_wm) {
        last_wm = wm;
        ptime = ptime + Interval::Millis(1);
        // All three streams share the generator's watermark.
        for (const char* source : {"Person", "Auction", "Bid"}) {
          FeedEvent w;
          w.kind = FeedEvent::Kind::kWatermark;
          w.source = source;
          w.ptime = ptime;
          w.watermark = wm;
          feed.push_back(std::move(w));
        }
      }
    }
  }
  // Close the feed: input complete on every stream.
  ptime = ptime + Interval::Millis(1);
  for (const char* source : {"Person", "Auction", "Bid"}) {
    FeedEvent w;
    w.kind = FeedEvent::Kind::kWatermark;
    w.source = source;
    w.ptime = ptime;
    w.watermark = Timestamp::Max();
    feed.push_back(std::move(w));
  }
  return feed;
}

std::string Q1() {
  return "SELECT bidtime, auction, bidder, price * 908 / 1000 AS euro_price "
         "FROM Bid";
}

std::string Q2() {
  return "SELECT bidtime, auction, price FROM Bid WHERE auction % 123 = 0";
}

std::string Q3() {
  return "SELECT p.name, p.state, a.id AS auction, a.itemName "
         "FROM Auction a JOIN Person p ON a.seller = p.id "
         "WHERE a.category = 3 AND p.state = 'OR'";
}

std::string Q4() {
  return "SELECT b.wend, a.category, AVG(b.price) AS avg_price "
         "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
         "            dur => INTERVAL '10' MINUTES) b "
         "JOIN Auction a ON b.auction = a.id "
         "GROUP BY b.wend, a.category";
}

std::string Q5() {
  return R"(
    SELECT MaxCnt.wend, Cnt.auction, Cnt.c AS num_bids
    FROM
      (SELECT b.wstart wstart, b.wend wend, b.auction auction,
              COUNT(*) c
       FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime),
                dur => INTERVAL '10' MINUTES,
                hopsize => INTERVAL '5' MINUTES) b
       GROUP BY b.wend, b.auction) Cnt,
      (SELECT b2.wend wend, MAX(b2.c) mx
       FROM
         (SELECT h.wend wend, h.auction auction, COUNT(*) c
          FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime),
                   dur => INTERVAL '10' MINUTES,
                   hopsize => INTERVAL '5' MINUTES) h
          GROUP BY h.wend, h.auction) b2
       GROUP BY b2.wend) MaxCnt
    WHERE Cnt.wend = MaxCnt.wend AND Cnt.c = MaxCnt.mx
  )";
}

std::string Q7(const std::string& emit) {
  return R"(
    SELECT MaxBid.wstart, MaxBid.wend,
           Bid.bidtime, Bid.price, Bid.auction
    FROM
      Bid,
      (SELECT MAX(t.price) maxPrice, t.wstart wstart, t.wend wend
       FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime),
                   dur => INTERVAL '10' MINUTE) t
       GROUP BY t.wend) MaxBid
    WHERE Bid.price = MaxBid.maxPrice AND
          Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE AND
          Bid.bidtime < MaxBid.wend
  )" + emit;
}

}  // namespace nexmark
}  // namespace onesql
