#include "tvr/tvr.h"

#include <algorithm>

namespace onesql {
namespace tvr {

Status TimeVaryingRelation::Apply(Change change) {
  if (change.ptime < last_ptime_) {
    return Status::InvalidArgument(
        "TVR changes must be applied in processing-time order");
  }
  if (change.kind == ChangeKind::kUpsert) {
    return Status::InvalidArgument(
        "TVR changelogs use INSERT/DELETE; decode upsert streams first");
  }
  if (change.kind == ChangeKind::kDelete) {
    auto it = current_.find(change.row);
    if (it == current_.end()) {
      return Status::InvalidArgument("DELETE of a row not in the relation: " +
                                     RowToString(change.row));
    }
    if (--it->second == 0) current_.erase(it);
  } else {
    current_[change.row] += 1;
  }
  last_ptime_ = change.ptime;
  log_.push_back(std::move(change));
  return Status::OK();
}

Result<TimeVaryingRelation> TimeVaryingRelation::FromChangelog(Changelog log) {
  TimeVaryingRelation tvr;
  for (Change& change : log) {
    ONESQL_RETURN_NOT_OK(tvr.Apply(std::move(change)));
  }
  return tvr;
}

std::vector<Timestamp> TimeVaryingRelation::ChangeTimes() const {
  std::vector<Timestamp> times;
  for (const Change& c : log_) {
    if (times.empty() || times.back() != c.ptime) times.push_back(c.ptime);
  }
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

namespace {

Row KeyOf(const Row& row, const std::vector<size_t>& key_columns) {
  Row key;
  key.reserve(key_columns.size());
  for (size_t c : key_columns) key.push_back(row[c]);
  return key;
}

}  // namespace

Result<std::vector<Change>> EncodeUpsertStream(
    const Changelog& retractions, const std::vector<size_t>& key_columns) {
  std::vector<Change> out;
  // Current row per key (validates the unique-key requirement).
  std::map<Row, Row, RowLess> current;

  struct NetSlot {
    std::vector<Row> inserted;
    std::vector<Row> deleted;
  };

  size_t i = 0;
  while (i < retractions.size()) {
    const Timestamp ptime = retractions[i].ptime;
    // Coalesce all changes at this instant per key.
    std::map<Row, NetSlot, RowLess> net;
    for (; i < retractions.size() && retractions[i].ptime == ptime; ++i) {
      const Change& c = retractions[i];
      if (c.kind == ChangeKind::kUpsert) {
        return Status::InvalidArgument("input is already an upsert stream");
      }
      NetSlot& slot = net[KeyOf(c.row, key_columns)];
      (c.kind == ChangeKind::kInsert ? slot.inserted : slot.deleted)
          .push_back(c.row);
    }
    for (auto& [key, slot] : net) {
      // Cancel matching insert/delete pairs (a transient change within the
      // instant is not a change of the relation).
      for (auto ins = slot.inserted.begin(); ins != slot.inserted.end();) {
        auto del = std::find_if(
            slot.deleted.begin(), slot.deleted.end(),
            [&](const Row& r) { return RowsEqual(r, *ins); });
        if (del != slot.deleted.end()) {
          slot.deleted.erase(del);
          ins = slot.inserted.erase(ins);
        } else {
          ++ins;
        }
      }
      if (slot.inserted.size() > 1 || slot.deleted.size() > 1) {
        return Status::InvalidArgument(
            "relation has duplicate rows for key " + RowToString(key) +
            "; upsert encoding requires a unique key");
      }
      auto it = current.find(key);
      if (!slot.deleted.empty()) {
        if (it == current.end() ||
            !RowsEqual(it->second, slot.deleted.front())) {
          return Status::InvalidArgument("delete of a row not current for " +
                                         RowToString(key));
        }
      }
      if (!slot.inserted.empty()) {
        if (slot.deleted.empty() && it != current.end()) {
          return Status::InvalidArgument(
              "insert for key already present without delete: " +
              RowToString(key));
        }
        // New row or replacement: one UPSERT record either way.
        out.push_back(Change{ChangeKind::kUpsert, slot.inserted.front(),
                             ptime});
        current[key] = slot.inserted.front();
      } else if (!slot.deleted.empty()) {
        out.push_back(Change{ChangeKind::kDelete, it->second, ptime});
        current.erase(it);
      }
    }
  }
  return out;
}

Result<Changelog> DecodeUpsertStream(const std::vector<Change>& upserts,
                                     const std::vector<size_t>& key_columns) {
  Changelog out;
  std::map<Row, Row, RowLess> current;
  for (const Change& c : upserts) {
    Row key = KeyOf(c.row, key_columns);
    auto it = current.find(key);
    switch (c.kind) {
      case ChangeKind::kUpsert:
        if (it != current.end()) {
          out.push_back(Change{ChangeKind::kDelete, it->second, c.ptime});
          it->second = c.row;
        } else {
          current.emplace(std::move(key), c.row);
        }
        out.push_back(Change{ChangeKind::kInsert, c.row, c.ptime});
        break;
      case ChangeKind::kDelete:
        if (it == current.end()) {
          return Status::InvalidArgument("DELETE for absent key " +
                                         RowToString(key));
        }
        out.push_back(Change{ChangeKind::kDelete, it->second, c.ptime});
        current.erase(it);
        break;
      case ChangeKind::kInsert:
        return Status::InvalidArgument(
            "upsert streams contain only UPSERT/DELETE records");
    }
  }
  return out;
}

}  // namespace tvr
}  // namespace onesql
