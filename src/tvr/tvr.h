#ifndef ONESQL_TVR_TVR_H_
#define ONESQL_TVR_TVR_H_

#include <map>
#include <vector>

#include "common/changelog.h"
#include "common/result.h"

namespace onesql {
namespace tvr {

/// A time-varying relation (Section 3.1): a relation whose contents evolve
/// over processing time. The TVR is the paper's single semantic object; the
/// two classic renderings — a sequence of snapshots (table) and a changelog
/// (stream) — are both derivable from it, and it is reconstructible from
/// either. This class materializes the changelog encoding and serves
/// point-in-time snapshots.
class TimeVaryingRelation {
 public:
  /// Appends one change. Processing times must be non-decreasing; DELETEs
  /// must retract a present row.
  Status Apply(Change change);

  /// The stream rendering.
  const Changelog& changelog() const { return log_; }

  /// The table rendering at processing time `ptime` (rows sorted).
  std::vector<Row> SnapshotAt(Timestamp ptime) const {
    return SnapshotOf(log_, ptime);
  }

  /// Current contents.
  std::vector<Row> Current() const { return SnapshotOf(log_, Timestamp::Max()); }

  /// Reconstructs a TVR from its changelog (stream -> TVR).
  static Result<TimeVaryingRelation> FromChangelog(Changelog log);

  /// Distinct processing times at which the relation changed.
  std::vector<Timestamp> ChangeTimes() const;

 private:
  Changelog log_;
  std::map<Row, int64_t, RowLess> current_;
  Timestamp last_ptime_ = Timestamp::Min();
};

/// Appendix B.2.3: the two changelog encodings Flink uses.
///
/// A *retraction stream* encodes every change as INSERT/DELETE; an update is
/// a DELETE followed by an INSERT (two records). An *upsert stream* requires
/// a unique key and encodes an update as a single UPSERT record — more
/// compact, at the price of requiring the key.

/// Converts a retraction changelog into an upsert changelog with respect to
/// `key_columns` (which must be a unique key of the relation at every
/// instant: at most one row per key). DELETE records carry the full deleted
/// row. Changes at the same ptime are coalesced per key.
Result<std::vector<Change>> EncodeUpsertStream(
    const Changelog& retractions, const std::vector<size_t>& key_columns);

/// Expands an upsert changelog back into a retraction changelog
/// (UPSERT over an existing key becomes DELETE + INSERT).
Result<Changelog> DecodeUpsertStream(const std::vector<Change>& upserts,
                                     const std::vector<size_t>& key_columns);

}  // namespace tvr
}  // namespace onesql

#endif  // ONESQL_TVR_TVR_H_
