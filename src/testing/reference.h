#ifndef ONESQL_TESTING_REFERENCE_H_
#define ONESQL_TESTING_REFERENCE_H_

#include <vector>

#include "common/result.h"
#include "testing/feed_gen.h"

namespace onesql {
namespace testing {

/// The reference oracle: a deliberately naive, non-incremental evaluator of
/// the fuzz grammar. It ignores processing time, watermarks, and deltas
/// entirely — it folds the feed into the final net multiset per stream and
/// recomputes the query from scratch, the way a batch system would evaluate
/// the TVR's final instant. Under perfect watermarks (nothing late, all
/// windows eventually closed by the final +inf watermark) the engine's
/// final table rendering must equal this, row for row as a multiset.
///
/// Kept independent of src/exec on purpose: it shares no window assignment,
/// no accumulator, and no expression evaluator with the engine, so a bug in
/// those layers cannot cancel out of the comparison.
Result<std::vector<Row>> ReferenceFinalSnapshot(
    const QuerySpec& query, const std::vector<FeedEvent>& events);

/// The CQL baseline oracle (insert-only, in-order-subset agreement): rows
/// are released in timestamp order through cql::HeartbeatBuffer using the
/// feed's own watermark schedule as heartbeats, windowed with
/// cql::SlidingWindow at RANGE = SLIDE = dur, and aggregated per boundary.
/// For tumbling aggregates over non-negative event times this must equal
/// the engine's final snapshot — the paper's claim that the watermark-based
/// one-SQL semantics subsumes CQL on the inputs CQL can express.
Result<std::vector<Row>> CqlTumbleSnapshot(
    const QuerySpec& query, const std::vector<FeedEvent>& events);

/// Sorts a row multiset into canonical order for comparison.
std::vector<Row> SortedRows(std::vector<Row> rows);

/// "" when the two multisets match, else a short human-readable diff.
std::string DiffRowMultisets(const std::vector<Row>& got,
                             const std::vector<Row>& want);

}  // namespace testing
}  // namespace onesql

#endif  // ONESQL_TESTING_REFERENCE_H_
