#include "testing/minimizer.h"

#include <algorithm>

namespace onesql {
namespace testing {

namespace {

/// Removes events [begin, begin+len) and restores every feed invariant the
/// generator guarantees, so the shrunk case fails for the original reason
/// and not because shrinking malformed the feed.
FuzzCase WithoutEvents(const FuzzCase& fuzz, size_t begin, size_t len) {
  FuzzCase candidate = fuzz;
  candidate.events.erase(
      candidate.events.begin() + static_cast<int64_t>(begin),
      candidate.events.begin() + static_cast<int64_t>(begin + len));
  RepairFeed(&candidate.events);
  if (candidate.perfect_watermarks()) {
    RegeneratePerfectWatermarks(&candidate.events);
  }
  return candidate;
}

}  // namespace

FuzzCase MinimizeCase(const FuzzCase& failing, const StillFails& still_fails,
                      int max_probes) {
  FuzzCase best = failing;
  int probes = 0;
  auto try_candidate = [&](const FuzzCase& candidate) {
    if (probes >= max_probes) return false;
    ++probes;
    if (!still_fails(candidate)) return false;
    best = candidate;
    return true;
  };

  // Drop whole queries first: each one removed halves the later search.
  if (best.queries.size() > 1) {
    for (size_t q = 0; q < best.queries.size() && best.queries.size() > 1;) {
      FuzzCase candidate = best;
      candidate.queries.erase(candidate.queries.begin() +
                              static_cast<int64_t>(q));
      if (!try_candidate(candidate)) ++q;
    }
  }

  // ddmin over events: chunks from half the feed down to single events.
  bool shrunk = true;
  while (shrunk && probes < max_probes) {
    shrunk = false;
    for (size_t chunk = std::max<size_t>(best.events.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (size_t begin = 0;
           begin < best.events.size() && probes < max_probes;) {
        const size_t len = std::min(chunk, best.events.size() - begin);
        if (len == best.events.size()) {
          begin += len;  // never empty the feed entirely
          continue;
        }
        if (try_candidate(WithoutEvents(best, begin, len))) {
          shrunk = true;  // indices shifted; retry the same position
        } else {
          begin += len;
        }
      }
      if (chunk == 1) break;
    }
  }
  return best;
}

}  // namespace testing
}  // namespace onesql
