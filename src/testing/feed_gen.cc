#include "testing/feed_gen.h"

#include <algorithm>
#include <map>

namespace onesql {
namespace testing {

namespace {

/// Self-contained splitmix64: the standard library's distributions are not
/// specified bit-for-bit across implementations, and a corpus seed must
/// reproduce the same case on every toolchain.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi], inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  bool Chance(int percent) { return Range(0, 99) < percent; }

  template <typename T>
  T Pick(std::initializer_list<T> options) {
    auto it = options.begin();
    std::advance(it, Range(0, static_cast<int64_t>(options.size()) - 1));
    return *it;
  }

 private:
  uint64_t state_;
};

const char* kItems[] = {"alpha", "beta", "gamma", "delta", ""};

std::string AggExpr(AggKind kind, size_t i) {
  std::string expr;
  switch (kind) {
    case AggKind::kCountStar:      expr = "COUNT(*)"; break;
    case AggKind::kCountV:         expr = "COUNT(v)"; break;
    case AggKind::kSumV:           expr = "SUM(v)"; break;
    case AggKind::kSumD:           expr = "SUM(d)"; break;
    case AggKind::kAvgD:           expr = "AVG(d)"; break;
    case AggKind::kMinV:           expr = "MIN(v)"; break;
    case AggKind::kMaxV:           expr = "MAX(v)"; break;
    case AggKind::kMinItem:        expr = "MIN(item)"; break;
    case AggKind::kMaxItem:        expr = "MAX(item)"; break;
    case AggKind::kCountDistinctV: expr = "COUNT(DISTINCT v)"; break;
  }
  return expr + " AS a" + std::to_string(i);
}

std::string IntervalMs(int64_t ms) {
  return "INTERVAL '" + std::to_string(ms) + "' MILLISECONDS";
}

QuerySpec GenerateQuerySpec(Rng* rng) {
  QuerySpec spec;
  const int64_t roll = rng->Range(0, 99);
  if (roll < 20) {
    spec.shape = QueryShape::kFilterProject;
  } else if (roll < 45) {
    spec.shape = QueryShape::kTumbleAgg;
  } else if (roll < 65) {
    spec.shape = QueryShape::kHopAgg;
  } else if (roll < 80) {
    spec.shape = QueryShape::kSession;
  } else {
    spec.shape = QueryShape::kJoin;
  }

  switch (spec.shape) {
    case QueryShape::kFilterProject:
      spec.extra_proj = rng->Chance(50);
      spec.has_filter = rng->Chance(60);
      // Non-negative constants only: the fuzz grammar stays inside the
      // subset every version of the parser accepts.
      spec.filter_min_v = rng->Range(0, 60);
      break;
    case QueryShape::kTumbleAgg:
    case QueryShape::kHopAgg: {
      spec.dur_ms = rng->Pick<int64_t>(
          {60'000, 120'000, 300'000, 450'000, 600'000, 900'000});
      if (spec.shape == QueryShape::kHopAgg) {
        // Dividing, non-dividing, and gap-producing (hop > dur) periods.
        spec.hop_ms = rng->Pick<int64_t>(
            {spec.dur_ms / 2, spec.dur_ms / 3, spec.dur_ms / 4,
             (spec.dur_ms * 3) / 4, spec.dur_ms * 2});
      }
      spec.keyed = rng->Chance(70);
      spec.gated = rng->Chance(40);
      spec.has_filter = rng->Chance(40);
      spec.filter_min_v = rng->Range(0, 60);
      const int64_t num_aggs = rng->Range(1, 3);
      for (int64_t i = 0; i < num_aggs; ++i) {
        spec.aggs.push_back(rng->Pick<AggKind>(
            {AggKind::kCountStar, AggKind::kCountV, AggKind::kSumV,
             AggKind::kSumD, AggKind::kAvgD, AggKind::kMinV, AggKind::kMaxV,
             AggKind::kMinItem, AggKind::kMaxItem,
             AggKind::kCountDistinctV}));
      }
      break;
    }
    case QueryShape::kSession:
      spec.gap_ms = rng->Pick<int64_t>(
          {30'000, 60'000, 120'000, 300'000, 600'000});
      break;
    case QueryShape::kJoin:
      spec.extra_join_cond = rng->Chance(50);
      break;
  }
  spec.sql = RenderSql(spec);
  return spec;
}

Value RandomK(Rng* rng, bool need_k, int null_pct = 10) {
  if (!need_k && rng->Chance(null_pct)) return Value::Null();
  return Value::Int64(rng->Range(0, 4));
}

Value RandomV(Rng* rng, int null_pct = 8) {
  if (rng->Chance(null_pct)) return Value::Null();
  return Value::Int64(rng->Range(-100, 100));
}

Value RandomD(Rng* rng, int null_pct = 8) {
  if (rng->Chance(null_pct)) return Value::Null();
  // Dyadic: n/64 with |n| <= 4096, so every sum of <= 48 values is exactly
  // representable and independent of accumulation order.
  return Value::Double(static_cast<double>(rng->Range(-4096, 4096)) / 64.0);
}

Value RandomItem(Rng* rng, int null_pct = 8) {
  if (rng->Chance(null_pct)) return Value::Null();
  return Value::String(kItems[rng->Range(0, 4)]);
}

/// Draws 1–2 query specs, each validated against a prototype engine's
/// planner with the trivial-projection fallback (shared by GenerateCase and
/// the boundary templates).
void GenerateQueries(Rng* rng, FuzzCase* fuzz) {
  Engine prototype;
  (void)prototype.RegisterStream(kFuzzStreamS, FuzzStreamSchema());
  (void)prototype.RegisterStream(kFuzzStreamR, FuzzStreamSchema());
  const int64_t num_queries = rng->Chance(35) ? 2 : 1;
  for (int64_t i = 0; i < num_queries; ++i) {
    QuerySpec spec = GenerateQuerySpec(rng);
    if (!prototype.Plan(spec.sql).ok()) {
      spec = QuerySpec{};
      spec.sql = RenderSql(spec);
    }
    fuzz->queries.push_back(std::move(spec));
  }
}

bool HasShape(const FuzzCase& fuzz, QueryShape shape) {
  return std::any_of(
      fuzz.queries.begin(), fuzz.queries.end(),
      [shape](const QuerySpec& q) { return q.shape == shape; });
}

bool NeedsK(const FuzzCase& fuzz) {
  return std::any_of(
      fuzz.queries.begin(), fuzz.queries.end(), [](const QuerySpec& q) {
        return q.shape == QueryShape::kJoin || q.shape == QueryShape::kSession;
      });
}

}  // namespace

const char* QueryShapeToString(QueryShape shape) {
  switch (shape) {
    case QueryShape::kFilterProject: return "filter_project";
    case QueryShape::kTumbleAgg:     return "tumble_agg";
    case QueryShape::kHopAgg:        return "hop_agg";
    case QueryShape::kSession:       return "session";
    case QueryShape::kJoin:          return "join";
  }
  return "unknown";
}

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:      return "count_star";
    case AggKind::kCountV:         return "count_v";
    case AggKind::kSumV:           return "sum_v";
    case AggKind::kSumD:           return "sum_d";
    case AggKind::kAvgD:           return "avg_d";
    case AggKind::kMinV:           return "min_v";
    case AggKind::kMaxV:           return "max_v";
    case AggKind::kMinItem:        return "min_item";
    case AggKind::kMaxItem:        return "max_item";
    case AggKind::kCountDistinctV: return "count_distinct_v";
  }
  return "unknown";
}

const char* FeedModeToString(FeedMode mode) {
  switch (mode) {
    case FeedMode::kDeletesPerfect:   return "deletes_perfect";
    case FeedMode::kInsertOnlyPerfect: return "insert_only_perfect";
    case FeedMode::kInsertOnlySloppy:  return "insert_only_sloppy";
  }
  return "unknown";
}

Schema FuzzStreamSchema() {
  return Schema({{"ts", DataType::kTimestamp, /*is_event_time=*/true},
                 {"k", DataType::kBigint},
                 {"v", DataType::kBigint},
                 {"d", DataType::kDouble},
                 {"item", DataType::kVarchar}});
}

std::string RenderSql(const QuerySpec& spec) {
  const std::string filter =
      spec.has_filter ? " WHERE v >= " + std::to_string(spec.filter_min_v)
                      : "";
  switch (spec.shape) {
    case QueryShape::kFilterProject: {
      std::string sql = "SELECT ts, k, v, d, item";
      if (spec.extra_proj) sql += ", v + k AS x";
      return sql + " FROM S" + filter;
    }
    case QueryShape::kTumbleAgg:
    case QueryShape::kHopAgg: {
      std::string sql = "SELECT ";
      if (spec.keyed) sql += "k, ";
      sql += "wend";
      for (size_t i = 0; i < spec.aggs.size(); ++i) {
        sql += ", " + AggExpr(spec.aggs[i], i);
      }
      if (spec.shape == QueryShape::kTumbleAgg) {
        sql += " FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
               "dur => " + IntervalMs(spec.dur_ms) + ") t";
      } else {
        sql += " FROM Hop(data => TABLE(S), timecol => DESCRIPTOR(ts), "
               "dur => " + IntervalMs(spec.dur_ms) +
               ", hopsize => " + IntervalMs(spec.hop_ms) + ") t";
      }
      sql += filter + " GROUP BY ";
      if (spec.keyed) sql += "k, ";
      sql += "wend";
      if (spec.gated) sql += " EMIT AFTER WATERMARK";
      return sql;
    }
    case QueryShape::kSession:
      return "SELECT * FROM Session(data => TABLE(S), "
             "timecol => DESCRIPTOR(ts), gap => " + IntervalMs(spec.gap_ms) +
             ", key => DESCRIPTOR(k)) s";
    case QueryShape::kJoin: {
      std::string sql =
          "SELECT a.ts AS ats, a.k AS k, a.v AS av, b.ts AS bts, b.v AS bv "
          "FROM S a, R b WHERE a.k = b.k";
      if (spec.extra_join_cond) sql += " AND a.v <= b.v";
      return sql;
    }
  }
  return "SELECT ts, k, v, d, item FROM S";
}

FuzzCase GenerateCase(uint64_t seed) {
  Rng rng(seed);
  FuzzCase fuzz;
  fuzz.seed = seed;

  const int64_t mode_roll = rng.Range(0, 9);
  if (mode_roll < 4) {
    fuzz.mode = FeedMode::kDeletesPerfect;
  } else if (mode_roll < 7) {
    fuzz.mode = FeedMode::kInsertOnlyPerfect;
  } else {
    fuzz.mode = FeedMode::kInsertOnlySloppy;
  }

  // Queries: one or two specs, validated against the planner. A spec the
  // planner rejects falls back to a trivial projection; the fuzz smoke test
  // asserts the fallback stays rare, so grammar drift is caught.
  GenerateQueries(&rng, &fuzz);
  const bool has_join = HasShape(fuzz, QueryShape::kJoin);
  const bool need_k = NeedsK(fuzz);

  // Base feed: inserts and (mode-dependent) deletes of live rows, with
  // non-decreasing processing times. Event times are drawn from a window
  // straddling the epoch so negative-timestamp alignment is exercised —
  // except in the CQL-compared mode, whose baseline windowing is defined
  // only for the paper's non-negative times.
  const int64_t num_events = rng.Range(8, 48);
  const int64_t ts_lo =
      fuzz.mode == FeedMode::kInsertOnlyPerfect ? 0 : -3'600'000;
  const int64_t ts_hi =
      fuzz.mode == FeedMode::kInsertOnlyPerfect ? 7'200'000 : 3'600'000;
  int64_t ptime = 0;
  std::map<std::string, std::vector<Row>> live;
  for (int64_t i = 0; i < num_events; ++i) {
    ptime += rng.Range(0, 5'000);
    const std::string source =
        has_join ? (rng.Chance(50) ? kFuzzStreamR : kFuzzStreamS)
                 : (rng.Chance(20) ? kFuzzStreamR : kFuzzStreamS);
    FeedEvent event;
    event.source = source;
    event.ptime = Timestamp(ptime);
    std::vector<Row>& pool = live[source];
    if (fuzz.mode == FeedMode::kDeletesPerfect && !pool.empty() &&
        rng.Chance(25)) {
      const size_t idx = static_cast<size_t>(
          rng.Range(0, static_cast<int64_t>(pool.size()) - 1));
      event.kind = FeedEvent::Kind::kDelete;
      event.row = pool[idx];
      pool.erase(pool.begin() + static_cast<int64_t>(idx));
    } else {
      event.kind = FeedEvent::Kind::kInsert;
      event.row = {Value::Time(Timestamp(rng.Range(ts_lo, ts_hi))),
                   RandomK(&rng, need_k), RandomV(&rng), RandomD(&rng),
                   RandomItem(&rng)};
      pool.push_back(event.row);
    }
    fuzz.events.push_back(std::move(event));
  }

  if (fuzz.perfect_watermarks()) {
    RegeneratePerfectWatermarks(&fuzz.events);
  } else {
    // Sloppy schedule: watermarks wander anywhere within the event-time
    // domain (monotone per stream), so rows genuinely arrive late and drop.
    std::vector<FeedEvent> with_marks;
    std::map<std::string, Timestamp> last_wm;
    for (FeedEvent& event : fuzz.events) {
      const std::string source = event.source;
      const Timestamp at = event.ptime;
      with_marks.push_back(std::move(event));
      if (!rng.Chance(33)) continue;
      const Timestamp wm(rng.Range(ts_lo - 10'000, ts_hi + 10'000));
      auto it = last_wm.find(source);
      if (it != last_wm.end() && wm <= it->second) continue;
      last_wm[source] = wm;
      FeedEvent mark;
      mark.kind = FeedEvent::Kind::kWatermark;
      mark.source = source;
      mark.ptime = at;
      mark.watermark = wm;
      with_marks.push_back(std::move(mark));
    }
    fuzz.events = std::move(with_marks);
    // Input complete: every window closes, gated queries flush.
    Timestamp final_ptime =
        fuzz.events.empty() ? Timestamp(0) : fuzz.events.back().ptime;
    for (const char* source : {kFuzzStreamS, kFuzzStreamR}) {
      FeedEvent mark;
      mark.kind = FeedEvent::Kind::kWatermark;
      mark.source = source;
      mark.ptime = final_ptime;
      mark.watermark = Timestamp::Max();
      fuzz.events.push_back(std::move(mark));
    }
  }
  return fuzz;
}

void RegeneratePerfectWatermarks(std::vector<FeedEvent>* events) {
  std::vector<FeedEvent> base;
  base.reserve(events->size());
  for (FeedEvent& event : *events) {
    if (event.kind != FeedEvent::Kind::kWatermark) {
      base.push_back(std::move(event));
    }
  }
  const size_t n = base.size();
  // min_future[i][source]: minimum row event time among base[i..] of that
  // source. A watermark placed after event i at min_future - 1ms is
  // "perfect": it is as tight as possible while provably never declaring a
  // still-outstanding row (insert or its later delete) late.
  std::map<std::string, Timestamp> running_min;
  std::vector<std::map<std::string, Timestamp>> min_future(n + 1);
  for (size_t i = n; i-- > 0;) {
    min_future[i + 1] = running_min;
    const Value& ts = base[i].row.empty() ? Value::Null() : base[i].row[0];
    if (!ts.is_null()) {
      auto [it, inserted] =
          running_min.emplace(base[i].source, ts.AsTimestamp());
      if (!inserted) it->second = std::min(it->second, ts.AsTimestamp());
    }
    if (i == 0) min_future[0] = running_min;
  }

  std::vector<FeedEvent> rebuilt;
  rebuilt.reserve(n * 2 + 2);
  std::map<std::string, Timestamp> last_wm;
  for (size_t i = 0; i < n; ++i) {
    const std::string source = base[i].source;
    const Timestamp at = base[i].ptime;
    rebuilt.push_back(std::move(base[i]));
    auto future = min_future[i + 1].find(source);
    if (future == min_future[i + 1].end()) continue;  // no more rows: wait
    const Timestamp wm = future->second - Interval::Millis(1);
    auto it = last_wm.find(source);
    if (it != last_wm.end() && wm <= it->second) continue;
    last_wm[source] = wm;
    FeedEvent mark;
    mark.kind = FeedEvent::Kind::kWatermark;
    mark.source = source;
    mark.ptime = at;
    mark.watermark = wm;
    rebuilt.push_back(std::move(mark));
  }
  const Timestamp final_ptime =
      rebuilt.empty() ? Timestamp(0) : rebuilt.back().ptime;
  for (const char* source : {kFuzzStreamS, kFuzzStreamR}) {
    FeedEvent mark;
    mark.kind = FeedEvent::Kind::kWatermark;
    mark.source = source;
    mark.ptime = final_ptime;
    mark.watermark = Timestamp::Max();
    rebuilt.push_back(std::move(mark));
  }
  *events = std::move(rebuilt);
}

const char* BoundaryTemplateToString(BoundaryTemplate t) {
  switch (t) {
    case BoundaryTemplate::kSingletonBatches: return "singleton_batches";
    case BoundaryTemplate::kOddRuns:          return "odd_runs";
    case BoundaryTemplate::kNullHeavy:        return "null_heavy";
    case BoundaryTemplate::kRetractionDense:  return "retraction_dense";
  }
  return "unknown";
}

FuzzCase GenerateBoundaryCase(uint64_t seed, BoundaryTemplate t) {
  // Decorrelated from GenerateCase(seed): the template tag perturbs the
  // splitmix64 state, so boundary cases explore their own corner of the
  // space without disturbing the frozen seed-to-case mapping.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(t) + 1);
  FuzzCase fuzz;
  fuzz.seed = seed;

  switch (t) {
    case BoundaryTemplate::kSingletonBatches: {
      // Insert-only with strictly ascending event times per stream: the
      // perfect watermark schedule then advances after every single row, so
      // every rows-chunk the engine builds holds exactly one row.
      fuzz.mode = FeedMode::kInsertOnlyPerfect;
      GenerateQueries(&rng, &fuzz);
      const bool has_join = HasShape(fuzz, QueryShape::kJoin);
      const bool need_k = NeedsK(fuzz);
      const int64_t num_events = rng.Range(8, 32);
      int64_t ptime = 0;
      std::map<std::string, int64_t> next_ts;
      for (int64_t i = 0; i < num_events; ++i) {
        ptime += rng.Range(0, 5'000);
        const std::string source =
            has_join ? (rng.Chance(50) ? kFuzzStreamR : kFuzzStreamS)
                     : (rng.Chance(20) ? kFuzzStreamR : kFuzzStreamS);
        auto [it, inserted] = next_ts.emplace(source, rng.Range(0, 60'000));
        if (!inserted) it->second += rng.Range(1, 60'000);
        FeedEvent event;
        event.kind = FeedEvent::Kind::kInsert;
        event.source = source;
        event.ptime = Timestamp(ptime);
        event.row = {Value::Time(Timestamp(it->second)),
                     RandomK(&rng, need_k), RandomV(&rng), RandomD(&rng),
                     RandomItem(&rng)};
        fuzz.events.push_back(std::move(event));
      }
      break;
    }
    case BoundaryTemplate::kOddRuns: {
      // Insert-only runs of odd length, one stream per run, event times
      // descending inside the run and jumping up between runs. The perfect
      // watermark for a stream is min-future-minus-1ms, which equals the
      // run's own minimum until its last row lands — so the schedule only
      // advances at run boundaries and every chunk has an odd row count.
      fuzz.mode = FeedMode::kInsertOnlyPerfect;
      GenerateQueries(&rng, &fuzz);
      const bool has_join = HasShape(fuzz, QueryShape::kJoin);
      const bool need_k = NeedsK(fuzz);
      const int64_t num_runs = rng.Range(3, 8);
      int64_t ptime = 0;
      int64_t base_ts = rng.Range(0, 60'000);
      std::map<std::string, bool> seen;
      for (int64_t r = 0; r < num_runs; ++r) {
        int64_t len = rng.Pick<int64_t>({1, 3, 5, 7, 9});
        const std::string source =
            has_join ? (rng.Chance(50) ? kFuzzStreamR : kFuzzStreamS)
                     : (rng.Chance(30) ? kFuzzStreamR : kFuzzStreamS);
        // A stream's very first row has no prior watermark, so the perfect
        // schedule marks right after it regardless of the run shape; keep
        // that forced boundary odd by making the first run a singleton.
        if (!seen[source]) {
          seen[source] = true;
          len = 1;
        }
        for (int64_t j = 0; j < len; ++j) {
          ptime += rng.Range(0, 2'000);
          FeedEvent event;
          event.kind = FeedEvent::Kind::kInsert;
          event.source = source;
          event.ptime = Timestamp(ptime);
          event.row = {Value::Time(Timestamp(base_ts + (len - 1 - j) * 1'000)),
                       RandomK(&rng, need_k), RandomV(&rng), RandomD(&rng),
                       RandomItem(&rng)};
          fuzz.events.push_back(std::move(event));
        }
        // Next run sits strictly above every timestamp of this one.
        base_ts += len * 1'000 + rng.Range(60'000, 120'000);
      }
      break;
    }
    case BoundaryTemplate::kNullHeavy:
    case BoundaryTemplate::kRetractionDense: {
      // Same feed skeleton as GenerateCase, with one probability cranked:
      // NULLs dominate every nullable column, or deletes dominate the event
      // mix (pool permitting).
      const bool null_heavy = t == BoundaryTemplate::kNullHeavy;
      fuzz.mode = null_heavy && rng.Chance(50) ? FeedMode::kInsertOnlyPerfect
                                               : FeedMode::kDeletesPerfect;
      GenerateQueries(&rng, &fuzz);
      const bool has_join = HasShape(fuzz, QueryShape::kJoin);
      const bool need_k = NeedsK(fuzz);
      const int null_pct = null_heavy ? 60 : 8;
      const int delete_pct = null_heavy ? 25 : 65;
      const int64_t num_events = rng.Range(16, 48);
      const int64_t ts_lo =
          fuzz.mode == FeedMode::kInsertOnlyPerfect ? 0 : -3'600'000;
      const int64_t ts_hi =
          fuzz.mode == FeedMode::kInsertOnlyPerfect ? 7'200'000 : 3'600'000;
      int64_t ptime = 0;
      std::map<std::string, std::vector<Row>> live;
      for (int64_t i = 0; i < num_events; ++i) {
        ptime += rng.Range(0, 5'000);
        const std::string source =
            has_join ? (rng.Chance(50) ? kFuzzStreamR : kFuzzStreamS)
                     : (rng.Chance(20) ? kFuzzStreamR : kFuzzStreamS);
        FeedEvent event;
        event.source = source;
        event.ptime = Timestamp(ptime);
        std::vector<Row>& pool = live[source];
        if (fuzz.mode == FeedMode::kDeletesPerfect && !pool.empty() &&
            rng.Chance(delete_pct)) {
          const size_t idx = static_cast<size_t>(
              rng.Range(0, static_cast<int64_t>(pool.size()) - 1));
          event.kind = FeedEvent::Kind::kDelete;
          event.row = pool[idx];
          pool.erase(pool.begin() + static_cast<int64_t>(idx));
        } else {
          event.kind = FeedEvent::Kind::kInsert;
          event.row = {Value::Time(Timestamp(rng.Range(ts_lo, ts_hi))),
                       RandomK(&rng, need_k, null_heavy ? 60 : 10),
                       RandomV(&rng, null_pct), RandomD(&rng, null_pct),
                       RandomItem(&rng, null_pct)};
          pool.push_back(event.row);
        }
        fuzz.events.push_back(std::move(event));
      }
      break;
    }
  }

  RegeneratePerfectWatermarks(&fuzz.events);
  return fuzz;
}

void RepairFeed(std::vector<FeedEvent>* events) {
  std::vector<FeedEvent> kept;
  kept.reserve(events->size());
  std::map<std::string, std::map<Row, int64_t, RowLess>> live;
  std::map<std::string, Timestamp> last_wm;
  Timestamp last_ptime = Timestamp::Min();
  for (FeedEvent& event : *events) {
    switch (event.kind) {
      case FeedEvent::Kind::kInsert:
        live[event.source][event.row] += 1;
        break;
      case FeedEvent::Kind::kDelete: {
        auto& pool = live[event.source];
        auto it = pool.find(event.row);
        if (it == pool.end()) continue;  // orphaned by a removed insert
        if (--it->second == 0) pool.erase(it);
        break;
      }
      case FeedEvent::Kind::kWatermark: {
        auto it = last_wm.find(event.source);
        if (it != last_wm.end() && event.watermark <= it->second) continue;
        last_wm[event.source] = event.watermark;
        break;
      }
    }
    if (event.ptime < last_ptime) event.ptime = last_ptime;
    last_ptime = event.ptime;
    kept.push_back(std::move(event));
  }
  *events = std::move(kept);
}

}  // namespace testing
}  // namespace onesql
