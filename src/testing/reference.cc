#include "testing/reference.h"

#include <algorithm>
#include <map>
#include <set>

#include "cql/cql.h"

namespace onesql {
namespace testing {

namespace {

// Column positions in FuzzStreamSchema.
constexpr size_t kTs = 0, kK = 1, kV = 2, kD = 3, kItem = 4;

/// Folds the feed into the final net multiset of one stream's rows.
Result<std::map<Row, int64_t, RowLess>> NetRows(
    const std::vector<FeedEvent>& events, const std::string& source) {
  std::map<Row, int64_t, RowLess> bag;
  for (const FeedEvent& event : events) {
    if (event.source != source) continue;
    if (event.kind == FeedEvent::Kind::kInsert) {
      bag[event.row] += 1;
    } else if (event.kind == FeedEvent::Kind::kDelete) {
      auto it = bag.find(event.row);
      if (it == bag.end()) {
        return Status::Internal("fuzz feed deletes a row it never inserted: " +
                                RowToString(event.row));
      }
      if (--it->second == 0) bag.erase(it);
    }
  }
  return bag;
}

std::vector<Row> Expand(const std::map<Row, int64_t, RowLess>& bag) {
  std::vector<Row> rows;
  for (const auto& [row, count] : bag) {
    for (int64_t i = 0; i < count; ++i) rows.push_back(row);
  }
  return rows;
}

bool PassesFilter(const QuerySpec& query, const Row& row) {
  if (!query.has_filter) return true;
  // SQL three-valued logic collapses at the WHERE: NULL is not TRUE.
  return !row[kV].is_null() && row[kV].AsInt64() >= query.filter_min_v;
}

/// Floored division — the alignment the engine must use so pre-epoch rows
/// land in the window below, not the truncation artifact above.
int64_t FloorDiv(int64_t a, int64_t b) {
  const int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

std::vector<int64_t> WindowStarts(int64_t t, int64_t dur, int64_t hop) {
  std::vector<int64_t> starts;
  for (int64_t s = FloorDiv(t, hop) * hop; s + dur > t; s -= hop) {
    starts.push_back(s);
  }
  std::reverse(starts.begin(), starts.end());
  return starts;
}

Value EvalAgg(AggKind kind, const std::vector<Row>& rows) {
  switch (kind) {
    case AggKind::kCountStar:
      return Value::Int64(static_cast<int64_t>(rows.size()));
    case AggKind::kCountV: {
      int64_t n = 0;
      for (const Row& r : rows) n += r[kV].is_null() ? 0 : 1;
      return Value::Int64(n);
    }
    case AggKind::kSumV: {
      int64_t sum = 0, n = 0;
      for (const Row& r : rows) {
        if (r[kV].is_null()) continue;
        sum += r[kV].AsInt64();
        ++n;
      }
      return n == 0 ? Value::Null() : Value::Int64(sum);
    }
    case AggKind::kSumD:
    case AggKind::kAvgD: {
      double sum = 0.0;
      int64_t n = 0;
      for (const Row& r : rows) {
        if (r[kD].is_null()) continue;
        sum += r[kD].AsDouble();
        ++n;
      }
      if (n == 0) return Value::Null();
      return Value::Double(kind == AggKind::kAvgD
                               ? sum / static_cast<double>(n)
                               : sum);
    }
    case AggKind::kMinV:
    case AggKind::kMaxV:
    case AggKind::kMinItem:
    case AggKind::kMaxItem: {
      const size_t col =
          (kind == AggKind::kMinV || kind == AggKind::kMaxV) ? kV : kItem;
      const bool is_min =
          kind == AggKind::kMinV || kind == AggKind::kMinItem;
      Value best;
      for (const Row& r : rows) {
        if (r[col].is_null()) continue;
        if (best.is_null() || (is_min ? r[col].Compare(best) < 0
                                      : r[col].Compare(best) > 0)) {
          best = r[col];
        }
      }
      return best;
    }
    case AggKind::kCountDistinctV: {
      std::set<int64_t> distinct;
      for (const Row& r : rows) {
        if (!r[kV].is_null()) distinct.insert(r[kV].AsInt64());
      }
      return Value::Int64(static_cast<int64_t>(distinct.size()));
    }
  }
  return Value::Null();
}

std::vector<Row> EvalFilterProject(const QuerySpec& query,
                                   const std::vector<Row>& rows) {
  std::vector<Row> out;
  for (const Row& row : rows) {
    if (!PassesFilter(query, row)) continue;
    Row projected = row;
    if (query.extra_proj) {
      projected.push_back(row[kV].is_null() || row[kK].is_null()
                              ? Value::Null()
                              : Value::Int64(row[kV].AsInt64() +
                                             row[kK].AsInt64()));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

/// Shared by Tumble/Hop reference and the CQL path: groups pre-windowed
/// rows by the (optional) key, evaluates the aggregate list, and renders
/// output rows as [k,] wend, a0, a1, ...
std::vector<Row> AggregateGroups(
    const QuerySpec& query,
    const std::map<Row, std::vector<Row>, RowLess>& groups) {
  std::vector<Row> out;
  for (const auto& [key, members] : groups) {
    Row result = key;
    for (AggKind agg : query.aggs) {
      result.push_back(EvalAgg(agg, members));
    }
    out.push_back(std::move(result));
  }
  return out;
}

std::vector<Row> EvalWindowedAgg(const QuerySpec& query,
                                 const std::vector<Row>& rows) {
  const int64_t hop =
      query.shape == QueryShape::kHopAgg ? query.hop_ms : query.dur_ms;
  std::map<Row, std::vector<Row>, RowLess> groups;
  for (const Row& row : rows) {
    if (!PassesFilter(query, row)) continue;
    const int64_t t = row[kTs].AsTimestamp().millis();
    for (int64_t wstart : WindowStarts(t, query.dur_ms, hop)) {
      Row key;
      if (query.keyed) key.push_back(row[kK]);
      key.push_back(Value::Time(Timestamp(wstart + query.dur_ms)));
      groups[key].push_back(row);
    }
  }
  return AggregateGroups(query, groups);
}

std::vector<Row> EvalSession(const QuerySpec& query,
                             const std::vector<Row>& rows) {
  std::map<Row, std::vector<Row>, RowLess> by_key;
  for (const Row& row : rows) {
    by_key[{row[kK]}].push_back(row);
  }
  std::vector<Row> out;
  for (auto& [key, members] : by_key) {
    std::sort(members.begin(), members.end(), [](const Row& a, const Row& b) {
      return a[kTs].AsTimestamp() < b[kTs].AsTimestamp();
    });
    // Offline sessionization: a row merges only while strictly inside the
    // open session's [min_t, max_t + gap) — a row at exactly max_t + gap
    // starts a new session.
    size_t begin = 0;
    while (begin < members.size()) {
      Timestamp min_t = members[begin][kTs].AsTimestamp();
      Timestamp max_t = min_t;
      size_t end = begin + 1;
      while (end < members.size()) {
        const Timestamp t = members[end][kTs].AsTimestamp();
        if (t >= max_t + Interval::Millis(query.gap_ms)) break;
        max_t = std::max(max_t, t);
        ++end;
      }
      const Value wstart = Value::Time(min_t);
      const Value wend =
          Value::Time(max_t + Interval::Millis(query.gap_ms));
      for (size_t i = begin; i < end; ++i) {
        Row row = members[i];
        row.push_back(wstart);
        row.push_back(wend);
        out.push_back(std::move(row));
      }
      begin = end;
    }
  }
  return out;
}

std::vector<Row> EvalJoin(const QuerySpec& query, const std::vector<Row>& s,
                          const std::vector<Row>& r) {
  std::vector<Row> out;
  for (const Row& a : s) {
    if (a[kK].is_null()) continue;  // NULL keys never match
    for (const Row& b : r) {
      if (b[kK].is_null() || a[kK].Compare(b[kK]) != 0) continue;
      if (query.extra_join_cond) {
        if (a[kV].is_null() || b[kV].is_null() ||
            a[kV].AsInt64() > b[kV].AsInt64()) {
          continue;
        }
      }
      out.push_back({a[kTs], a[kK], a[kV], b[kTs], b[kV]});
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Row>> ReferenceFinalSnapshot(
    const QuerySpec& query, const std::vector<FeedEvent>& events) {
  ONESQL_ASSIGN_OR_RETURN(auto s_bag, NetRows(events, kFuzzStreamS));
  const std::vector<Row> s_rows = Expand(s_bag);
  switch (query.shape) {
    case QueryShape::kFilterProject:
      return EvalFilterProject(query, s_rows);
    case QueryShape::kTumbleAgg:
    case QueryShape::kHopAgg:
      return EvalWindowedAgg(query, s_rows);
    case QueryShape::kSession:
      return EvalSession(query, s_rows);
    case QueryShape::kJoin: {
      ONESQL_ASSIGN_OR_RETURN(auto r_bag, NetRows(events, kFuzzStreamR));
      return EvalJoin(query, s_rows, Expand(r_bag));
    }
  }
  return Status::Internal("unknown query shape");
}

Result<std::vector<Row>> CqlTumbleSnapshot(
    const QuerySpec& query, const std::vector<FeedEvent>& events) {
  if (query.shape != QueryShape::kTumbleAgg) {
    return Status::Internal("CQL oracle only covers tumbling aggregates");
  }
  // Release rows in timestamp order through the heartbeat buffer, driving
  // heartbeats from the feed's own watermark schedule.
  cql::HeartbeatBuffer buffer;
  std::vector<cql::TimestampedRow> ordered;
  for (const FeedEvent& event : events) {
    if (event.source != kFuzzStreamS) continue;
    if (event.kind == FeedEvent::Kind::kInsert) {
      buffer.Add(event.row[kTs].AsTimestamp(), event.row);
    } else if (event.kind == FeedEvent::Kind::kDelete) {
      return Status::Internal("CQL oracle requires an insert-only feed");
    } else if (event.watermark > buffer.heartbeat()) {
      for (cql::TimestampedRow& released :
           buffer.AdvanceHeartbeat(event.watermark)) {
        ordered.push_back(std::move(released));
      }
    }
  }
  if (Timestamp::Max() > buffer.heartbeat()) {
    for (cql::TimestampedRow& released :
         buffer.AdvanceHeartbeat(Timestamp::Max())) {
      ordered.push_back(std::move(released));
    }
  }

  std::vector<cql::TimestampedRow> filtered;
  for (cql::TimestampedRow& tr : ordered) {
    if (PassesFilter(query, tr.row)) filtered.push_back(std::move(tr));
  }
  if (filtered.empty()) return std::vector<Row>{};

  // RANGE = SLIDE = dur turns CQL's sliding window into the tumble: each
  // boundary tau renders exactly the window [tau - dur, tau).
  const Timestamp end =
      filtered.back().ts + Interval::Millis(query.dur_ms);
  const auto relations =
      cql::SlidingWindow(filtered, Interval::Millis(query.dur_ms),
                         Interval::Millis(query.dur_ms), end);
  std::vector<Row> out;
  for (const cql::InstantRelation& rel : relations) {
    std::map<Row, std::vector<Row>, RowLess> groups;
    for (const Row& row : rel.rows) {
      Row key;
      if (query.keyed) key.push_back(row[kK]);
      key.push_back(Value::Time(rel.tau));
      groups[key].push_back(row);
    }
    for (Row& row : AggregateGroups(query, groups)) {
      out.push_back(std::move(row));
    }
  }
  return out;
}

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return rows;
}

std::string DiffRowMultisets(const std::vector<Row>& got,
                             const std::vector<Row>& want) {
  const std::vector<Row> a = SortedRows(got);
  const std::vector<Row> b = SortedRows(want);
  if (a.size() == b.size()) {
    size_t i = 0;
    while (i < a.size() && RowsEqual(a[i], b[i])) ++i;
    if (i == a.size()) return "";
    return "row " + std::to_string(i) + ": got " + RowToString(a[i]) +
           ", want " + RowToString(b[i]);
  }
  std::string diff = "got " + std::to_string(a.size()) + " rows, want " +
                     std::to_string(b.size());
  const size_t show = std::min<size_t>(3, std::max(a.size(), b.size()));
  for (size_t i = 0; i < show; ++i) {
    diff += "\n  got:  " + (i < a.size() ? RowToString(a[i]) : "(none)");
    diff += "\n  want: " + (i < b.size() ? RowToString(b[i]) : "(none)");
  }
  return diff;
}

}  // namespace testing
}  // namespace onesql
