#include "testing/oracles.h"

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "server/server_core.h"
#include "server/wire.h"
#include "testing/reference.h"

namespace onesql {
namespace testing {

namespace {

/// splitmix64 finalizer: derives deterministic per-oracle choices (batch
/// sizes, crash prefix) from the case seed without std::random.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Result<std::unique_ptr<Engine>> MakeBaseEngine() {
  auto engine = std::make_unique<Engine>();
  ONESQL_RETURN_NOT_OK(engine->RegisterStream(kFuzzStreamS, FuzzStreamSchema()));
  ONESQL_RETURN_NOT_OK(engine->RegisterStream(kFuzzStreamR, FuzzStreamSchema()));
  return engine;
}

Result<std::vector<ContinuousQuery*>> ExecuteAll(
    Engine* engine, const std::vector<QuerySpec>& specs, int shards) {
  ExecutionOptions options;
  options.shards = shards;
  std::vector<ContinuousQuery*> queries;
  for (const QuerySpec& spec : specs) {
    ONESQL_ASSIGN_OR_RETURN(ContinuousQuery * q,
                            engine->Execute(spec.sql, options));
    queries.push_back(q);
  }
  return queries;
}

Status ApplyEvent(Engine* engine, const FeedEvent& event) {
  switch (event.kind) {
    case FeedEvent::Kind::kInsert:
      return engine->Insert(event.source, event.ptime, event.row);
    case FeedEvent::Kind::kDelete:
      return engine->Delete(event.source, event.ptime, event.row);
    case FeedEvent::Kind::kWatermark:
      return engine->AdvanceWatermark(event.source, event.ptime,
                                      event.watermark);
  }
  return Status::Internal("unknown feed event kind");
}

/// Feeds `events` through Engine::Feed in deterministic pseudo-random
/// batches of 1-7 events, exercising the batch dispatch path.
Status FeedBatched(Engine* engine, const std::vector<FeedEvent>& events,
                   uint64_t salt) {
  size_t i = 0;
  uint64_t state = salt;
  while (i < events.size()) {
    state = Mix(state);
    const size_t take = std::min(events.size() - i, 1 + state % 7);
    ONESQL_RETURN_NOT_OK(engine->Feed(std::vector<FeedEvent>(
        events.begin() + i, events.begin() + i + take)));
    i += take;
  }
  return Status::OK();
}

/// Folds a changelog into the relation it describes. Returns a diagnostic
/// when an undo arrives for a row the changelog never asserted — itself a
/// duality violation.
std::string AccumulateEmissions(const std::vector<exec::Emission>& emissions,
                                std::vector<Row>* out) {
  std::map<Row, int64_t, RowLess> bag;
  for (const exec::Emission& e : emissions) {
    if (e.undo) {
      auto it = bag.find(e.row);
      if (it == bag.end()) {
        return "changelog retracts a row it never emitted: " + e.ToString();
      }
      if (--it->second == 0) bag.erase(it);
    } else {
      bag[e.row] += 1;
    }
  }
  for (const auto& [row, count] : bag) {
    for (int64_t i = 0; i < count; ++i) out->push_back(row);
  }
  return "";
}

/// Bit-exact comparison of two changelogs, metadata included: same rows,
/// same undo flags, same processing times, same revision counters, same
/// order.
std::string CompareEmissions(const std::vector<exec::Emission>& got,
                             const std::vector<exec::Emission>& want) {
  if (got.size() != want.size()) {
    return "changelog length " + std::to_string(got.size()) + " vs " +
           std::to_string(want.size());
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const exec::Emission& g = got[i];
    const exec::Emission& w = want[i];
    if (!RowsEqual(g.row, w.row) || g.undo != w.undo || g.ptime != w.ptime ||
        g.ver != w.ver) {
      return "changelog entry " + std::to_string(i) + ": " + g.ToString() +
             " vs " + w.ToString();
    }
  }
  return "";
}

std::string CompareRowSequences(const std::vector<Row>& got,
                                const std::vector<Row>& want) {
  if (got.size() != want.size()) {
    return "snapshot size " + std::to_string(got.size()) + " vs " +
           std::to_string(want.size());
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (!RowsEqual(got[i], want[i])) {
      return "snapshot row " + std::to_string(i) + ": " +
             RowToString(got[i]) + " vs " + RowToString(want[i]);
    }
  }
  return "";
}

struct QueryRendering {
  std::vector<exec::Emission> emissions;
  std::vector<Row> snapshot;
};

Result<QueryRendering> Render(ContinuousQuery* query) {
  QueryRendering r;
  r.emissions = query->Emissions();
  ONESQL_ASSIGN_OR_RETURN(r.snapshot, query->CurrentSnapshot());
  return r;
}

std::string QueryLabel(const FuzzCase& fuzz, size_t i) {
  return "query " + std::to_string(i) + " [" + fuzz.queries[i].sql + "]";
}

/// Issues one wire command against the server core and parses the response.
/// Returns a non-empty diagnostic when the command is rejected or the
/// response is malformed.
std::string ServerCall(server::ServerCore* core, uint64_t session,
                       const server::Json& request, server::Json* response) {
  Result<server::Json> parsed =
      server::Json::Parse(core->HandleLine(session, request.Serialize()));
  if (!parsed.ok()) {
    return "unparseable response to " + request.Serialize() + ": " +
           parsed.status().ToString();
  }
  *response = std::move(parsed).value();
  const server::Json* ok = response->Find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->AsBool()) {
    return "server rejected " + request.Serialize() + ": " +
           response->Serialize();
  }
  return "";
}

/// Oracle 5 (run_sharing): serves the case through a ServerCore wrapping a
/// CloneRegistrations() clone of the baseline engine. Two sessions submit
/// every query with {"share": true} — the second must attach to the first
/// session's operator tree — and both subscribe from seq 0. After feeding
/// the case over the wire, each subscription's pushed lines must be
/// byte-identical to EncodeDeltaLine over the dedicated baseline changelog,
/// and the served snapshots must match the baseline snapshots. Returns a
/// diagnostic, or "" on agreement.
std::string RunSharingOracle(const FuzzCase& fuzz, Engine* baseline_engine,
                             const std::vector<QueryRendering>& baseline) {
  auto clone = baseline_engine->CloneRegistrations();
  if (!clone.ok()) {
    return "CloneRegistrations: " + clone.status().ToString();
  }
  server::ServerOptions options;
  // The final watermark can flush every pane at once; keep a whole case's
  // pushed backlog inside the slow-subscriber overflow bound.
  options.max_session_queue = 1 << 20;
  auto created = server::ServerCore::Create(options, std::move(clone).value());
  if (!created.ok()) {
    return "ServerCore::Create: " + created.status().ToString();
  }
  std::unique_ptr<server::ServerCore> core = std::move(created).value();

  Result<uint64_t> first = core->OpenSession();
  Result<uint64_t> second = core->OpenSession();
  if (!first.ok() || !second.ok()) {
    return "OpenSession failed";
  }
  const uint64_t sessions[2] = {first.value(), second.value()};

  // Submit every query from both sessions (the second session's submit must
  // report it attached to a shared plan), then subscribe both from seq 0.
  std::vector<std::string> names(fuzz.queries.size());
  std::set<std::string> fingerprints;
  std::map<uint64_t, size_t> sub_query;      // subscription id -> query index
  std::map<uint64_t, uint64_t> sub_session;  // subscription id -> session
  for (int s = 0; s < 2; ++s) {
    for (size_t q = 0; q < fuzz.queries.size(); ++q) {
      server::Json submit = server::Json::Object();
      submit.Set("cmd", server::Json::Str("submit"));
      submit.Set("sql", server::Json::Str(fuzz.queries[q].sql));
      submit.Set("share", server::Json::Bool(true));
      server::Json response;
      std::string err = ServerCall(core.get(), sessions[s], submit, &response);
      if (!err.empty()) return QueryLabel(fuzz, q) + ": " + err;
      const server::Json* name = response.Find("query");
      const server::Json* fp = response.Find("fingerprint");
      const server::Json* shared = response.Find("shared");
      if (name == nullptr || !name->is_string() || fp == nullptr ||
          !fp->is_string() || shared == nullptr || !shared->is_bool()) {
        return QueryLabel(fuzz, q) + ": malformed submit response " +
               response.Serialize();
      }
      if (s == 0) {
        // Two generated queries can canonicalize identically, so the first
        // session's submit may itself land on a shared plan; only the
        // second session's must.
        names[q] = name->AsString();
        fingerprints.insert(fp->AsString());
      } else {
        if (!shared->AsBool()) {
          return QueryLabel(fuzz, q) +
                 ": second session was not routed onto the shared plan";
        }
        if (name->AsString() != names[q]) {
          return QueryLabel(fuzz, q) + ": shared submit named " +
                 name->AsString() + ", first session got " + names[q];
        }
      }

      server::Json subscribe = server::Json::Object();
      subscribe.Set("cmd", server::Json::Str("subscribe"));
      subscribe.Set("query", server::Json::Str(name->AsString()));
      subscribe.Set("from_seq", server::Json::Int(0));
      err = ServerCall(core.get(), sessions[s], subscribe, &response);
      if (!err.empty()) return QueryLabel(fuzz, q) + ": " + err;
      const server::Json* sub = response.Find("sub");
      if (sub == nullptr || !sub->is_int()) {
        return QueryLabel(fuzz, q) + ": malformed subscribe response " +
               response.Serialize();
      }
      sub_query[static_cast<uint64_t>(sub->AsInt())] = q;
      sub_session[static_cast<uint64_t>(sub->AsInt())] = sessions[s];
    }
  }
  // Distinct fingerprints must map one-to-one onto live operator trees: the
  // cache never duplicates a plan and never conflates two distinct ones.
  if (core->num_plans() != fingerprints.size()) {
    return "plan cache holds " + std::to_string(core->num_plans()) +
           " entries for " + std::to_string(fingerprints.size()) +
           " distinct fingerprints";
  }

  // Feed the case over the wire in deterministic batches, alternating the
  // submitting session and draining both push queues as we go.
  std::map<uint64_t, std::vector<std::string>> pushed;  // sub id -> lines
  auto drain = [&](uint64_t session) -> std::string {
    for (const auto& line : core->DrainOutbound(session)) {
      Result<server::Json> parsed = server::Json::Parse(*line);
      if (!parsed.ok()) return "unparseable push line: " + *line;
      const server::Json* kind = parsed.value().Find("push");
      const server::Json* sub = parsed.value().Find("sub");
      if (kind == nullptr || !kind->is_string() ||
          kind->AsString() != "delta" || sub == nullptr || !sub->is_int()) {
        return "unexpected push line: " + *line;
      }
      pushed[static_cast<uint64_t>(sub->AsInt())].push_back(*line);
    }
    return "";
  };
  size_t i = 0;
  uint64_t state = Mix(fuzz.seed ^ 0x5A1E5ULL);
  while (i < fuzz.events.size()) {
    state = Mix(state);
    const size_t take = std::min(fuzz.events.size() - i, 1 + state % 7);
    server::Json feed = server::Json::Object();
    feed.Set("cmd", server::Json::Str("feed"));
    server::Json events = server::Json::Array();
    for (size_t e = i; e < i + take; ++e) {
      events.Add(server::EncodeFeedEvent(fuzz.events[e]));
    }
    feed.Set("events", std::move(events));
    server::Json response;
    std::string err = ServerCall(core.get(), sessions[i % 2], feed, &response);
    if (!err.empty()) return "event " + std::to_string(i) + ": " + err;
    for (uint64_t session : sessions) {
      err = drain(session);
      if (!err.empty()) return err;
    }
    i += take;
  }

  // Every subscription must have received exactly the baseline changelog,
  // byte-for-byte in the shared wire encoding.
  for (const auto& [sub, q] : sub_query) {
    const std::vector<exec::Emission>& want = baseline[q].emissions;
    const std::vector<std::string>& got = pushed[sub];
    if (got.size() != want.size()) {
      return QueryLabel(fuzz, q) + " sub " + std::to_string(sub) +
             ": pushed " + std::to_string(got.size()) + " deltas, baseline " +
             std::to_string(want.size());
    }
    for (size_t e = 0; e < want.size(); ++e) {
      const std::string expect = server::EncodeDeltaLine(sub, e, want[e]);
      if (got[e] != expect) {
        return QueryLabel(fuzz, q) + " sub " + std::to_string(sub) +
               " delta " + std::to_string(e) + ": " + got[e] + " vs " + expect;
      }
    }
  }

  // And the served snapshot must match the baseline's, for both tenants.
  for (const auto& [sub, q] : sub_query) {
    server::Json snapshot = server::Json::Object();
    snapshot.Set("cmd", server::Json::Str("snapshot"));
    snapshot.Set("query", server::Json::Str(names[q]));
    server::Json response;
    std::string err =
        ServerCall(core.get(), sub_session[sub], snapshot, &response);
    if (!err.empty()) return QueryLabel(fuzz, q) + ": " + err;
    const server::Json* rows = response.Find("rows");
    if (rows == nullptr || !rows->is_array()) {
      return QueryLabel(fuzz, q) + ": malformed snapshot response " +
             response.Serialize();
    }
    server::Json expect = server::Json::Array();
    for (const Row& row : baseline[q].snapshot) {
      expect.Add(server::EncodeRow(row));
    }
    if (rows->Serialize() != expect.Serialize()) {
      return QueryLabel(fuzz, q) + " snapshot: " + rows->Serialize() +
             " vs " + expect.Serialize();
    }
  }
  return "";
}

}  // namespace

std::string CaseOutcome::ToString() const {
  if (failures.empty()) return "ok";
  std::ostringstream out;
  for (const CaseFailure& f : failures) {
    out << "[" << f.oracle << "] " << f.detail << "\n";
  }
  return out.str();
}

Result<CaseOutcome> RunCase(const FuzzCase& fuzz, const OracleOptions& opts) {
  CaseOutcome outcome;
  if (fuzz.queries.empty()) {
    return Status::InvalidArgument("fuzz case has no queries");
  }
  const size_t n = fuzz.events.size();

  // ---- Oracle 1: duality, over the sequential event-by-event baseline.
  ONESQL_ASSIGN_OR_RETURN(auto baseline_engine, MakeBaseEngine());
  ONESQL_ASSIGN_OR_RETURN(auto baseline_queries,
                          ExecuteAll(baseline_engine.get(), fuzz.queries, 1));

  std::set<size_t> duality_at;
  for (int i = 1; i <= opts.duality_checks; ++i) {
    duality_at.insert(n * static_cast<size_t>(i) /
                      static_cast<size_t>(opts.duality_checks));
  }
  duality_at.insert(n);

  for (size_t i = 0; i < n; ++i) {
    const Status fed = ApplyEvent(baseline_engine.get(), fuzz.events[i]);
    if (!fed.ok()) {
      outcome.failures.push_back(
          {"feed", "event " + std::to_string(i) + ": " + fed.ToString()});
      return outcome;
    }
    if (duality_at.count(i + 1) == 0) continue;
    for (size_t q = 0; q < baseline_queries.size(); ++q) {
      std::vector<Row> from_changelog;
      std::string err = AccumulateEmissions(
          baseline_queries[q]->Emissions(), &from_changelog);
      if (err.empty()) {
        auto snapshot = baseline_queries[q]->CurrentSnapshot();
        if (!snapshot.ok()) {
          return snapshot.status();
        }
        err = DiffRowMultisets(SortedRows(std::move(from_changelog)),
                               SortedRows(std::move(*snapshot)));
      }
      if (!err.empty()) {
        outcome.failures.push_back(
            {"duality", QueryLabel(fuzz, q) + " at prefix " +
                            std::to_string(i + 1) + ": " + err});
      }
    }
  }

  std::vector<QueryRendering> baseline;
  for (ContinuousQuery* q : baseline_queries) {
    ONESQL_ASSIGN_OR_RETURN(QueryRendering r, Render(q));
    baseline.push_back(std::move(r));
  }

  // ---- Oracle 2: shard invariance, batched feed at each shard count.
  for (int shards : opts.shard_counts) {
    ONESQL_ASSIGN_OR_RETURN(auto sharded_engine,
                            baseline_engine->CloneRegistrations());
    ONESQL_ASSIGN_OR_RETURN(
        auto sharded_queries,
        ExecuteAll(sharded_engine.get(), fuzz.queries, shards));
    const Status fed = FeedBatched(sharded_engine.get(), fuzz.events,
                                   Mix(fuzz.seed) ^ static_cast<uint64_t>(shards));
    if (!fed.ok()) {
      outcome.failures.push_back(
          {"shards", "shards=" + std::to_string(shards) +
                         " rejected the feed: " + fed.ToString()});
      continue;
    }
    for (size_t q = 0; q < sharded_queries.size(); ++q) {
      ONESQL_ASSIGN_OR_RETURN(QueryRendering r, Render(sharded_queries[q]));
      std::string err = CompareEmissions(r.emissions, baseline[q].emissions);
      if (err.empty()) {
        err = CompareRowSequences(r.snapshot, baseline[q].snapshot);
      }
      if (!err.empty()) {
        outcome.failures.push_back(
            {"shards", QueryLabel(fuzz, q) + " shards=" +
                           std::to_string(shards) + ": " + err});
      }
    }
  }

  // ---- Oracle 3: crash equivalence at a seed-chosen prefix.
  if (opts.run_crash && !opts.temp_dir.empty() && n >= 2) {
    const size_t cut = 1 + Mix(fuzz.seed ^ 0xC4A54ULL) % (n - 1);
    const std::string dir =
        opts.temp_dir + "/fuzz_case_" + std::to_string(fuzz.seed);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::DataLoss("cannot create crash-oracle dir " + dir);
    }
    Status crash_status = Status::OK();
    {
      ONESQL_ASSIGN_OR_RETURN(auto crashing,
                              baseline_engine->CloneRegistrations());
      ONESQL_ASSIGN_OR_RETURN(auto ignored,
                              ExecuteAll(crashing.get(), fuzz.queries, 1));
      (void)ignored;
      if (opts.crash_use_wal) {
        crash_status = crashing->EnableDurability(dir);
      }
      if (crash_status.ok()) {
        crash_status = crashing->Feed(std::vector<FeedEvent>(
            fuzz.events.begin(),
            fuzz.events.begin() + static_cast<int64_t>(cut)));
      }
      if (crash_status.ok()) crash_status = crashing->Checkpoint(dir);
      if (crash_status.ok() && opts.crash_use_wal) {
        // With a WAL attached the suffix is also logged before the "crash";
        // restore must replay it without our help.
        crash_status = crashing->Feed(std::vector<FeedEvent>(
            fuzz.events.begin() + static_cast<int64_t>(cut),
            fuzz.events.end()));
      }
      // Engine destroyed here with no shutdown handshake — the crash.
    }
    if (crash_status.ok()) {
      Engine restored;
      crash_status = restored.Restore(dir);
      if (crash_status.ok() && !opts.crash_use_wal) {
        crash_status = restored.Feed(std::vector<FeedEvent>(
            fuzz.events.begin() + static_cast<int64_t>(cut),
            fuzz.events.end()));
      }
      if (crash_status.ok()) {
        if (restored.num_queries() != fuzz.queries.size()) {
          outcome.failures.push_back(
              {"crash", "restore lost queries: " +
                            std::to_string(restored.num_queries()) + " of " +
                            std::to_string(fuzz.queries.size())});
        }
        for (size_t q = 0; q < restored.num_queries(); ++q) {
          ONESQL_ASSIGN_OR_RETURN(QueryRendering r,
                                  Render(restored.query(q)));
          std::string err =
              CompareEmissions(r.emissions, baseline[q].emissions);
          if (err.empty()) {
            err = CompareRowSequences(r.snapshot, baseline[q].snapshot);
          }
          if (!err.empty()) {
            outcome.failures.push_back(
                {"crash", QueryLabel(fuzz, q) + " prefix=" +
                              std::to_string(cut) +
                              (opts.crash_use_wal ? " (wal)" : "") + ": " +
                              err});
          }
        }
      }
    }
    if (!crash_status.ok()) {
      outcome.failures.push_back(
          {"crash", "prefix=" + std::to_string(cut) +
                        (opts.crash_use_wal ? " (wal)" : "") + ": " +
                        crash_status.ToString()});
    }
    std::filesystem::remove_all(dir, ec);
  }

  // ---- Oracle 4a: naive reference interpreter (perfect watermarks only).
  if (opts.run_reference && fuzz.perfect_watermarks()) {
    for (size_t q = 0; q < fuzz.queries.size(); ++q) {
      ONESQL_ASSIGN_OR_RETURN(
          std::vector<Row> expected,
          ReferenceFinalSnapshot(fuzz.queries[q], fuzz.events));
      const std::string err =
          DiffRowMultisets(baseline[q].snapshot, expected);
      if (!err.empty()) {
        outcome.failures.push_back(
            {"reference", QueryLabel(fuzz, q) + ": " + err});
      }
    }
  }

  // ---- Oracle 4b: CQL baseline (insert-only, in-order tumbling subset).
  if (opts.run_cql && fuzz.mode == FeedMode::kInsertOnlyPerfect) {
    for (size_t q = 0; q < fuzz.queries.size(); ++q) {
      if (fuzz.queries[q].shape != QueryShape::kTumbleAgg) continue;
      ONESQL_ASSIGN_OR_RETURN(
          std::vector<Row> expected,
          CqlTumbleSnapshot(fuzz.queries[q], fuzz.events));
      const std::string err =
          DiffRowMultisets(baseline[q].snapshot, expected);
      if (!err.empty()) {
        outcome.failures.push_back({"cql", QueryLabel(fuzz, q) + ": " + err});
      }
    }
  }

  // ---- Oracle 5: multi-tenant plan sharing over the standing-query server.
  if (opts.run_sharing) {
    const std::string err =
        RunSharingOracle(fuzz, baseline_engine.get(), baseline);
    if (!err.empty()) outcome.failures.push_back({"sharing", err});
  }

  return outcome;
}

}  // namespace testing
}  // namespace onesql
