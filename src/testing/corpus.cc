#include "testing/corpus.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <sstream>

namespace onesql {
namespace testing {

namespace {

std::string DoubleToken(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", d);  // hexfloat: exact round-trip
  return buf;
}

std::string ValueToken(const Value& v) {
  if (v.is_null()) return "N";
  switch (v.type()) {
    case DataType::kBigint:
      return std::to_string(v.AsInt64());
    case DataType::kDouble:
      return DoubleToken(v.AsDouble());
    case DataType::kVarchar:
      // The fuzz vocabulary is whitespace-free; "s:" disambiguates the
      // empty string from a missing token.
      return "s:" + v.AsString();
    case DataType::kTimestamp:
      return std::to_string(v.AsTimestamp().millis());
    default:
      return "N";
  }
}

Result<int64_t> ParseInt(const std::string& token, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what +
                                   " token in corpus file: " + token);
  }
  return static_cast<int64_t>(v);
}

Result<Value> ParseRowToken(const std::string& token, DataType type) {
  if (token == "N") return Value::Null();
  switch (type) {
    case DataType::kTimestamp: {
      ONESQL_ASSIGN_OR_RETURN(int64_t ms, ParseInt(token, "timestamp"));
      return Value::Time(Timestamp(ms));
    }
    case DataType::kBigint: {
      ONESQL_ASSIGN_OR_RETURN(int64_t v, ParseInt(token, "bigint"));
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double d = std::strtod(token.c_str(), &end);
      if (errno != 0 || end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double token in corpus file: " +
                                       token);
      }
      return Value::Double(d);
    }
    case DataType::kVarchar:
      if (token.rfind("s:", 0) != 0) {
        return Status::InvalidArgument("bad string token in corpus file: " +
                                       token);
      }
      return Value::String(token.substr(2));
    default:
      return Status::InvalidArgument("unsupported corpus column type");
  }
}

Result<QueryShape> ParseShape(const std::string& name) {
  for (QueryShape shape :
       {QueryShape::kFilterProject, QueryShape::kTumbleAgg,
        QueryShape::kHopAgg, QueryShape::kSession, QueryShape::kJoin}) {
    if (name == QueryShapeToString(shape)) return shape;
  }
  return Status::InvalidArgument("unknown query shape: " + name);
}

Result<AggKind> ParseAgg(const std::string& name) {
  for (AggKind kind :
       {AggKind::kCountStar, AggKind::kCountV, AggKind::kSumV,
        AggKind::kSumD, AggKind::kAvgD, AggKind::kMinV, AggKind::kMaxV,
        AggKind::kMinItem, AggKind::kMaxItem, AggKind::kCountDistinctV}) {
    if (name == AggKindToString(kind)) return kind;
  }
  return Status::InvalidArgument("unknown aggregate kind: " + name);
}

Result<FeedMode> ParseMode(const std::string& name) {
  for (FeedMode mode :
       {FeedMode::kDeletesPerfect, FeedMode::kInsertOnlyPerfect,
        FeedMode::kInsertOnlySloppy}) {
    if (name == FeedModeToString(mode)) return mode;
  }
  return Status::InvalidArgument("unknown feed mode: " + name);
}

Result<QuerySpec> ParseQueryLine(const std::string& rest) {
  QuerySpec spec;
  const size_t sql_at = rest.find(" sql=");
  if (sql_at == std::string::npos) {
    return Status::InvalidArgument("query line missing sql=: " + rest);
  }
  spec.sql = rest.substr(sql_at + 5);
  std::istringstream fields(rest.substr(0, sql_at));
  std::string field;
  while (fields >> field) {
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad query field: " + field);
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "shape") {
      ONESQL_ASSIGN_OR_RETURN(spec.shape, ParseShape(value));
    } else if (key == "dur") {
      ONESQL_ASSIGN_OR_RETURN(spec.dur_ms, ParseInt(value, "dur"));
    } else if (key == "hop") {
      ONESQL_ASSIGN_OR_RETURN(spec.hop_ms, ParseInt(value, "hop"));
    } else if (key == "gap") {
      ONESQL_ASSIGN_OR_RETURN(spec.gap_ms, ParseInt(value, "gap"));
    } else if (key == "keyed") {
      spec.keyed = value == "1";
    } else if (key == "gated") {
      spec.gated = value == "1";
    } else if (key == "filter") {
      if (value == "-") {
        spec.has_filter = false;
      } else {
        spec.has_filter = true;
        ONESQL_ASSIGN_OR_RETURN(spec.filter_min_v, ParseInt(value, "filter"));
      }
    } else if (key == "extra_proj") {
      spec.extra_proj = value == "1";
    } else if (key == "extra_join_cond") {
      spec.extra_join_cond = value == "1";
    } else if (key == "aggs") {
      if (value != "-") {
        std::istringstream aggs(value);
        std::string agg;
        while (std::getline(aggs, agg, ',')) {
          ONESQL_ASSIGN_OR_RETURN(AggKind kind, ParseAgg(agg));
          spec.aggs.push_back(kind);
        }
      }
    } else {
      return Status::InvalidArgument("unknown query field: " + key);
    }
  }
  return spec;
}

Result<FeedEvent> ParseEventLine(std::istringstream* line) {
  FeedEvent event;
  std::string kind, ptime;
  if (!(*line >> kind >> event.source >> ptime)) {
    return Status::InvalidArgument("truncated event line");
  }
  ONESQL_ASSIGN_OR_RETURN(int64_t ptime_ms, ParseInt(ptime, "ptime"));
  event.ptime = Timestamp(ptime_ms);
  if (kind == "watermark") {
    event.kind = FeedEvent::Kind::kWatermark;
    std::string wm;
    if (!(*line >> wm)) {
      return Status::InvalidArgument("watermark event missing timestamp");
    }
    ONESQL_ASSIGN_OR_RETURN(int64_t wm_ms, ParseInt(wm, "watermark"));
    event.watermark = Timestamp(wm_ms);
    return event;
  }
  if (kind == "insert") {
    event.kind = FeedEvent::Kind::kInsert;
  } else if (kind == "delete") {
    event.kind = FeedEvent::Kind::kDelete;
  } else {
    return Status::InvalidArgument("unknown event kind: " + kind);
  }
  const Schema schema = FuzzStreamSchema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    std::string token;
    if (!(*line >> token)) {
      return Status::InvalidArgument("event row has too few columns");
    }
    ONESQL_ASSIGN_OR_RETURN(Value v,
                            ParseRowToken(token, schema.field(i).type));
    event.row.push_back(std::move(v));
  }
  return event;
}

}  // namespace

std::string SerializeCase(const FuzzCase& fuzz) {
  std::ostringstream out;
  out << "onesql-fuzz-case v1\n";
  out << "seed " << fuzz.seed << "\n";
  out << "mode " << FeedModeToString(fuzz.mode) << "\n";
  for (const QuerySpec& q : fuzz.queries) {
    out << "query shape=" << QueryShapeToString(q.shape) << " dur=" << q.dur_ms
        << " hop=" << q.hop_ms << " gap=" << q.gap_ms
        << " keyed=" << (q.keyed ? 1 : 0) << " gated=" << (q.gated ? 1 : 0)
        << " filter=";
    if (q.has_filter) {
      out << q.filter_min_v;
    } else {
      out << "-";
    }
    out << " extra_proj=" << (q.extra_proj ? 1 : 0)
        << " extra_join_cond=" << (q.extra_join_cond ? 1 : 0) << " aggs=";
    if (q.aggs.empty()) {
      out << "-";
    } else {
      for (size_t i = 0; i < q.aggs.size(); ++i) {
        out << (i ? "," : "") << AggKindToString(q.aggs[i]);
      }
    }
    out << " sql=" << q.sql << "\n";
  }
  for (const FeedEvent& event : fuzz.events) {
    if (event.kind == FeedEvent::Kind::kWatermark) {
      out << "event watermark " << event.source << " "
          << event.ptime.millis() << " " << event.watermark.millis() << "\n";
      continue;
    }
    out << "event "
        << (event.kind == FeedEvent::Kind::kInsert ? "insert" : "delete")
        << " " << event.source << " " << event.ptime.millis();
    for (const Value& v : event.row) {
      out << " " << ValueToken(v);
    }
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<FuzzCase> ParseCase(const std::string& text) {
  FuzzCase fuzz;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false, saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "onesql-fuzz-case v1") {
        return Status::InvalidArgument("bad corpus header: " + line);
      }
      saw_header = true;
      continue;
    }
    std::istringstream tokens(line);
    std::string tag;
    tokens >> tag;
    if (tag == "seed") {
      std::string value;
      tokens >> value;
      errno = 0;
      char* end = nullptr;
      fuzz.seed = std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad seed: " + value);
      }
    } else if (tag == "mode") {
      std::string value;
      tokens >> value;
      ONESQL_ASSIGN_OR_RETURN(fuzz.mode, ParseMode(value));
    } else if (tag == "query") {
      std::string rest;
      std::getline(tokens, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      ONESQL_ASSIGN_OR_RETURN(QuerySpec spec, ParseQueryLine(rest));
      fuzz.queries.push_back(std::move(spec));
    } else if (tag == "event") {
      ONESQL_ASSIGN_OR_RETURN(FeedEvent event, ParseEventLine(&tokens));
      fuzz.events.push_back(std::move(event));
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return Status::InvalidArgument("unknown corpus line: " + line);
    }
  }
  if (!saw_header || !saw_end) {
    return Status::InvalidArgument("corpus file missing header or end marker");
  }
  if (fuzz.queries.empty()) {
    return Status::InvalidArgument("corpus case has no queries");
  }
  return fuzz;
}

Status WriteCaseFile(const FuzzCase& fuzz, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::DataLoss("cannot open corpus file " + path);
  out << SerializeCase(fuzz);
  out.close();
  if (!out) return Status::DataLoss("failed writing corpus file " + path);
  return Status::OK();
}

Result<FuzzCase> ReadCaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::DataLoss("cannot read corpus file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = ParseCase(text.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

Result<std::vector<std::pair<std::string, FuzzCase>>> LoadCorpusDir(
    const std::string& dir) {
  std::vector<std::pair<std::string, FuzzCase>> cases;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return cases;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path().string());
  }
  if (ec) return Status::DataLoss("cannot list corpus dir " + dir);
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    ONESQL_ASSIGN_OR_RETURN(FuzzCase fuzz, ReadCaseFile(path));
    cases.emplace_back(path, std::move(fuzz));
  }
  return cases;
}

}  // namespace testing
}  // namespace onesql
