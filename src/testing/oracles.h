#ifndef ONESQL_TESTING_ORACLES_H_
#define ONESQL_TESTING_ORACLES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "testing/feed_gen.h"

namespace onesql {
namespace testing {

/// Knobs for one differential run. Defaults run every applicable oracle.
struct OracleOptions {
  /// Shard counts compared bit-for-bit against the sequential baseline.
  std::vector<int> shard_counts = {2, 8};

  /// Directory for the crash oracle's checkpoint files; a per-case
  /// subdirectory is created and removed inside it. Empty disables the
  /// crash oracle.
  std::string temp_dir;

  /// When true the crash run also attaches the write-ahead feed log, so
  /// restore exercises checkpoint + WAL-suffix replay instead of
  /// checkpoint-only. Costs one fsync per feed call; the driver enables it
  /// for a slice of the seed range.
  bool crash_use_wal = false;

  /// Number of evenly spaced feed prefixes at which the duality oracle
  /// compares the accumulated changelog against the snapshot.
  int duality_checks = 8;

  bool run_reference = true;  // auto-skipped for sloppy-watermark feeds
  bool run_cql = true;        // applies to tumbling aggregates, mode B only
  bool run_crash = true;
  /// Serve the case through the standing-query server with two sessions
  /// sharing each query's operator tree, and require every subscriber's
  /// pushed changelog to render bit-identically to the dedicated baseline.
  bool run_sharing = true;
};

/// One oracle disagreement. `oracle` is the stable machine-readable name:
/// "duality", "shards", "crash", "reference", "cql", "sharing", or "feed"
/// (the feed itself was rejected, which a generated case never is).
struct CaseFailure {
  std::string oracle;
  std::string detail;
};

struct CaseOutcome {
  std::vector<CaseFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string ToString() const;
};

/// Runs one case through every applicable oracle:
///
///  1. Duality: at every checked feed prefix, the accumulated EMIT STREAM
///     changelog of each query must reconstruct exactly its table snapshot.
///  2. Shard invariance: re-running the same feed (batched) at each shard
///     count must render a bit-identical stream (undo/ptime/ver included)
///     and snapshot.
///  3. Crash equivalence: checkpointing at a seed-chosen prefix, restoring
///     into a fresh engine, and feeding the suffix must render identically
///     to the uninterrupted run.
///  4. Reference semantics: the final snapshot must equal the naive
///     interpreter's from-scratch evaluation (perfect-watermark modes), and
///     the CQL baseline's (insert-only tumbling aggregates).
///  5. Sharing: serving the case through the standing-query server with two
///     sessions riding one shared plan per query (submit {"share": true}),
///     every subscriber's pushed delta stream must be byte-identical to the
///     wire encoding of the dedicated baseline's changelog, and the served
///     snapshots must match the baseline's.
///
/// Returns an error only when the harness itself cannot run (a query fails
/// to plan, registration fails) — engine disagreements are reported as
/// failures in the outcome, never as a Status.
Result<CaseOutcome> RunCase(const FuzzCase& fuzz, const OracleOptions& opts);

}  // namespace testing
}  // namespace onesql

#endif  // ONESQL_TESTING_ORACLES_H_
