#ifndef ONESQL_TESTING_CORPUS_H_
#define ONESQL_TESTING_CORPUS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "testing/feed_gen.h"

namespace onesql {
namespace testing {

/// Corpus files are self-contained text renderings of one FuzzCase: the
/// query specs (structural fields plus the rendered SQL) and the exact
/// feed, with doubles in hexfloat so every bit round-trips. A minimized
/// failing case checked into tests/fuzz/corpus/ replays forever in tier-1,
/// independent of how the generator's seed mapping evolves.
///
/// Format (line-oriented, '#' starts a comment line):
///   onesql-fuzz-case v1
///   seed <u64>
///   mode <deletes_perfect|insert_only_perfect|insert_only_sloppy>
///   query shape=<shape> dur=<ms> hop=<ms> gap=<ms> keyed=<0|1> ...
///         aggs=<csv|-> sql=<rest of line>
///   event insert <source> <ptime_ms> <ts_ms> <k|N> <v|N> <d_hex|N> <item|N>
///   event delete <source> ...same columns...
///   event watermark <source> <ptime_ms> <wm_ms>
///   end
std::string SerializeCase(const FuzzCase& fuzz);

Result<FuzzCase> ParseCase(const std::string& text);

Status WriteCaseFile(const FuzzCase& fuzz, const std::string& path);

Result<FuzzCase> ReadCaseFile(const std::string& path);

/// Loads every regular file in `dir` (non-recursive), sorted by filename
/// for deterministic replay order. A missing directory is an empty corpus,
/// not an error; an unparseable file is.
Result<std::vector<std::pair<std::string, FuzzCase>>> LoadCorpusDir(
    const std::string& dir);

}  // namespace testing
}  // namespace onesql

#endif  // ONESQL_TESTING_CORPUS_H_
