#ifndef ONESQL_TESTING_MINIMIZER_H_
#define ONESQL_TESTING_MINIMIZER_H_

#include <functional>

#include "testing/feed_gen.h"

namespace onesql {
namespace testing {

/// True when the case still reproduces the failure being chased. The
/// minimizer only keeps a shrink step if the predicate still holds.
using StillFails = std::function<bool(const FuzzCase&)>;

/// ddmin-style case shrinker: repeatedly tries to drop event subranges
/// (halving the chunk size down to single events) and to drop whole
/// queries, keeping each removal only if the case still fails. After every
/// event removal the feed is repaired — orphaned deletes dropped, watermark
/// monotonicity restored, and (for perfect-watermark modes) the perfect
/// schedule regenerated, so the invariants the oracles rely on survive
/// shrinking. `max_probes` bounds the total number of predicate
/// evaluations; minimization is best-effort within that budget.
FuzzCase MinimizeCase(const FuzzCase& failing, const StillFails& still_fails,
                      int max_probes = 400);

}  // namespace testing
}  // namespace onesql

#endif  // ONESQL_TESTING_MINIMIZER_H_
