#ifndef ONESQL_TESTING_FEED_GEN_H_
#define ONESQL_TESTING_FEED_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace onesql {
namespace testing {

/// The differential fuzzer's case space (DESIGN.md §12): one seed maps
/// deterministically to a small bundle of continuous queries plus an
/// out-of-order, timestamped, watermarked feed. Every generated case is
/// valid by construction — deletes only target live rows, processing times
/// and watermarks are monotone — so any oracle disagreement is an engine
/// bug, not a malformed input.

/// Shapes cover every operator family the planner can emit for a single
/// statement: stateless pipelines, the three windowing TVFs, and the
/// streaming equi-join.
enum class QueryShape {
  kFilterProject,
  kTumbleAgg,
  kHopAgg,
  kSession,
  kJoin,
};

/// Aggregate calls drawn for the windowed shapes. The double-typed ones are
/// generated over a dyadic domain (multiples of 1/64, |d| <= 64) so every
/// partial sum is exactly representable and bitwise comparison across
/// evaluation orders is sound.
enum class AggKind {
  kCountStar,
  kCountV,
  kSumV,
  kSumD,
  kAvgD,
  kMinV,
  kMaxV,
  kMinItem,
  kMaxItem,
  kCountDistinctV,
};

const char* QueryShapeToString(QueryShape shape);
const char* AggKindToString(AggKind kind);

struct QuerySpec {
  QueryShape shape = QueryShape::kFilterProject;
  int64_t dur_ms = 0;   // Tumble/Hop window length
  int64_t hop_ms = 0;   // Hop period
  int64_t gap_ms = 0;   // Session gap
  bool keyed = false;   // GROUP BY k alongside wend
  bool gated = false;   // EMIT AFTER WATERMARK (Tumble/Hop only)
  bool has_filter = false;
  int64_t filter_min_v = 0;  // WHERE v >= filter_min_v
  bool extra_proj = false;   // kFilterProject: add "v + k AS x"
  bool extra_join_cond = false;  // kJoin: add "AND a.v <= b.v"
  std::vector<AggKind> aggs;
  std::string sql;  // rendered statement (RenderSql)
};

/// How the feed is shaped, which decides the applicable oracles:
///  - kDeletesPerfect: inserts + deletes, perfect watermarks. All five
///    oracles apply (nothing is ever late, windows never close early).
///  - kInsertOnlyPerfect: insert-only, perfect watermarks, non-negative
///    event times. Adds the CQL baseline oracle for tumbling aggregates.
///  - kInsertOnlySloppy: insert-only with arbitrary (monotone) watermarks,
///    so rows genuinely drop late. The reference interpreter does not model
///    lateness; only the self-consistency oracles (duality, shard
///    invariance, crash equivalence) run.
enum class FeedMode {
  kDeletesPerfect,
  kInsertOnlyPerfect,
  kInsertOnlySloppy,
};

const char* FeedModeToString(FeedMode mode);

struct FuzzCase {
  uint64_t seed = 0;
  FeedMode mode = FeedMode::kDeletesPerfect;
  std::vector<QuerySpec> queries;
  std::vector<FeedEvent> events;

  bool perfect_watermarks() const { return mode != FeedMode::kInsertOnlySloppy; }
};

/// Schema shared by both fuzz streams, S and R:
///   ts TIMESTAMP event-time, k BIGINT, v BIGINT, d DOUBLE, item VARCHAR.
Schema FuzzStreamSchema();

/// Names of the two registered streams.
inline const char* kFuzzStreamS = "S";
inline const char* kFuzzStreamR = "R";

/// Renders spec into its SQL text (does not touch spec.sql).
std::string RenderSql(const QuerySpec& spec);

/// Deterministically expands one seed into a full case. The SQL of every
/// query is validated against Engine::Plan; a spec the planner rejects is
/// replaced by a trivial known-good projection (this keeps the generator
/// total — a planner regression then shows up as mass fallback, caught by
/// the smoke assertions in tests/fuzz).
FuzzCase GenerateCase(uint64_t seed);

/// Batch-boundary stress templates for the columnar hot path (DESIGN.md
/// §14): each family shapes the feed so the ChangeBatch chunking degenerates
/// in a specific way, and any scalar-vs-vectorized divergence at that seam
/// shows up as an oracle disagreement.
///  - kSingletonBatches: insert-only, event times strictly ascending per
///    stream, so the perfect watermark schedule closes every rows-chunk
///    after exactly one row. Exercises batch size 1 everywhere.
///  - kOddRuns: insert-only runs of odd length (1/3/5/7/9) with descending
///    event times inside each run; the perfect watermark only advances at
///    run boundaries, so every chunk has an odd, >1-capable row count and
///    is internally out of order.
///  - kNullHeavy: ~60% NULLs in every nullable column, so the validity
///    masks, not the value lanes, carry most of the information.
///  - kRetractionDense: deletes-allowed mode with the delete probability
///    raised to ~65%, so the weight column flips sign on most rows and
///    accumulator retraction dominates.
enum class BoundaryTemplate {
  kSingletonBatches,
  kOddRuns,
  kNullHeavy,
  kRetractionDense,
};

const char* BoundaryTemplateToString(BoundaryTemplate t);

inline constexpr BoundaryTemplate kAllBoundaryTemplates[] = {
    BoundaryTemplate::kSingletonBatches, BoundaryTemplate::kOddRuns,
    BoundaryTemplate::kNullHeavy, BoundaryTemplate::kRetractionDense};

/// Deterministically expands (seed, template) into a full case with the
/// same validity guarantees as GenerateCase — deletes only target live
/// rows, ptimes and watermarks monotone — so every oracle that applies to
/// the case's mode can run on it unchanged. The seed stream is
/// decorrelated from GenerateCase's, and GenerateCase's seed-to-case
/// mapping is untouched.
FuzzCase GenerateBoundaryCase(uint64_t seed, BoundaryTemplate t);

/// Rebuilds the watermark schedule of `events` in place: strips every
/// watermark event and re-inserts the perfect schedule (per stream, the
/// minimum event time over all *future* insert/delete rows, minus 1ms),
/// ending with a Timestamp::Max() watermark per stream. Used by the
/// minimizer, whose event removals would otherwise break the
/// perfect-watermark invariant the reference oracle relies on.
void RegeneratePerfectWatermarks(std::vector<FeedEvent>* events);

/// Drops delete events whose row no longer has a live matching insert
/// before them (the minimizer creates such orphans when it removes insert
/// events), and re-establishes watermark monotonicity per stream.
void RepairFeed(std::vector<FeedEvent>* events);

}  // namespace testing
}  // namespace onesql

#endif  // ONESQL_TESTING_FEED_GEN_H_
