#include "server/wire.h"

namespace onesql {
namespace server {

Json EncodeValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return Json::Null();
    case DataType::kBoolean:
      return Json::Bool(v.AsBool());
    case DataType::kBigint:
      return Json::Int(v.AsInt64());
    case DataType::kDouble:
      return Json::Double(v.AsDouble());
    case DataType::kVarchar:
      return Json::Str(v.AsString());
    case DataType::kTimestamp:
      return Json::Int(v.AsTimestamp().millis());
    case DataType::kInterval:
      return Json::Int(v.AsInterval().millis());
  }
  return Json::Null();
}

Result<Value> DecodeValue(const Json& j, DataType type) {
  if (j.is_null()) return Value::Null();
  switch (type) {
    case DataType::kNull:
      break;
    case DataType::kBoolean:
      if (j.is_bool()) return Value::Bool(j.AsBool());
      break;
    case DataType::kBigint:
      if (j.is_int()) return Value::Int64(j.AsInt());
      break;
    case DataType::kDouble:
      if (j.is_number()) return Value::Double(j.AsDouble());
      break;
    case DataType::kVarchar:
      if (j.is_string()) return Value::String(j.AsString());
      break;
    case DataType::kTimestamp:
      if (j.is_int()) return Value::Time(Timestamp(j.AsInt()));
      break;
    case DataType::kInterval:
      if (j.is_int()) return Value::Duration(Interval(j.AsInt()));
      break;
  }
  return Status::InvalidArgument(std::string("cannot decode ") +
                                 j.Serialize() + " as " +
                                 DataTypeToString(type));
}

Json EncodeRow(const Row& row) {
  Json out = Json::Array();
  for (const Value& v : row) out.Add(EncodeValue(v));
  return out;
}

Result<Row> DecodeRow(const Json& j, const Schema& schema) {
  if (!j.is_array()) {
    return Status::InvalidArgument("row must be a JSON array");
  }
  if (j.items().size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "row arity mismatch: got " + std::to_string(j.items().size()) +
        " values for " + std::to_string(schema.num_fields()) + " columns");
  }
  Row row;
  row.reserve(j.items().size());
  for (size_t i = 0; i < j.items().size(); ++i) {
    ONESQL_ASSIGN_OR_RETURN(Value v,
                            DecodeValue(j.items()[i], schema.field(i).type));
    row.push_back(std::move(v));
  }
  return row;
}

Result<DataType> ParseDataType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "boolean") return DataType::kBoolean;
  if (lower == "bigint") return DataType::kBigint;
  if (lower == "double") return DataType::kDouble;
  if (lower == "varchar") return DataType::kVarchar;
  if (lower == "timestamp") return DataType::kTimestamp;
  if (lower == "interval") return DataType::kInterval;
  return Status::InvalidArgument("unknown data type '" + name + "'");
}

Json EncodeSchema(const Schema& schema) {
  Json out = Json::Array();
  for (const Field& f : schema.fields()) {
    Json field = Json::Object();
    field.Set("name", Json::Str(f.name));
    field.Set("type", Json::Str(DataTypeToString(f.type)));
    if (f.is_event_time) field.Set("event_time", Json::Bool(true));
    out.Add(std::move(field));
  }
  return out;
}

Result<Schema> DecodeSchema(const Json& j) {
  if (!j.is_array()) {
    return Status::InvalidArgument("schema must be a JSON array of columns");
  }
  std::vector<Field> fields;
  fields.reserve(j.items().size());
  for (const Json& item : j.items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("schema column must be a JSON object");
    }
    const Json* name = item.Find("name");
    const Json* type = item.Find("type");
    if (name == nullptr || !name->is_string() || type == nullptr ||
        !type->is_string()) {
      return Status::InvalidArgument(
          "schema column needs string \"name\" and \"type\"");
    }
    Field field;
    field.name = name->AsString();
    ONESQL_ASSIGN_OR_RETURN(field.type, ParseDataType(type->AsString()));
    const Json* et = item.Find("event_time");
    if (et != nullptr) {
      if (!et->is_bool()) {
        return Status::InvalidArgument("\"event_time\" must be a boolean");
      }
      field.is_event_time = et->AsBool();
      if (field.is_event_time && field.type != DataType::kTimestamp) {
        return Status::InvalidArgument("event time column '" + field.name +
                                       "' must be TIMESTAMP");
      }
    }
    fields.push_back(std::move(field));
  }
  return Schema(std::move(fields));
}

Json EncodeFeedEvent(const FeedEvent& event) {
  Json out = Json::Object();
  switch (event.kind) {
    case FeedEvent::Kind::kInsert:
      out.Set("kind", Json::Str("insert"));
      break;
    case FeedEvent::Kind::kDelete:
      out.Set("kind", Json::Str("delete"));
      break;
    case FeedEvent::Kind::kWatermark:
      out.Set("kind", Json::Str("watermark"));
      break;
  }
  out.Set("source", Json::Str(event.source));
  out.Set("ptime", Json::Int(event.ptime.millis()));
  if (event.kind == FeedEvent::Kind::kWatermark) {
    out.Set("watermark", Json::Int(event.watermark.millis()));
  } else {
    out.Set("row", EncodeRow(event.row));
  }
  return out;
}

Result<FeedEvent> DecodeFeedEvent(const Json& j,
                                  const plan::Catalog& catalog) {
  if (!j.is_object()) {
    return Status::InvalidArgument("feed event must be a JSON object");
  }
  const Json* kind = j.Find("kind");
  const Json* source = j.Find("source");
  const Json* ptime = j.Find("ptime");
  if (kind == nullptr || !kind->is_string() || source == nullptr ||
      !source->is_string() || ptime == nullptr || !ptime->is_int()) {
    return Status::InvalidArgument(
        "feed event needs string \"kind\", string \"source\", int \"ptime\"");
  }
  FeedEvent event;
  event.source = source->AsString();
  event.ptime = Timestamp(ptime->AsInt());
  const std::string& k = kind->AsString();
  if (k == "watermark") {
    event.kind = FeedEvent::Kind::kWatermark;
    const Json* wm = j.Find("watermark");
    if (wm == nullptr || !wm->is_int()) {
      return Status::InvalidArgument(
          "watermark event needs int \"watermark\"");
    }
    event.watermark = Timestamp(wm->AsInt());
    return event;
  }
  if (k == "insert") {
    event.kind = FeedEvent::Kind::kInsert;
  } else if (k == "delete") {
    event.kind = FeedEvent::Kind::kDelete;
  } else {
    return Status::InvalidArgument("unknown feed event kind '" + k + "'");
  }
  const Json* row = j.Find("row");
  if (row == nullptr) {
    return Status::InvalidArgument("row event needs \"row\"");
  }
  ONESQL_ASSIGN_OR_RETURN(const plan::TableDef* def,
                          catalog.Lookup(event.source));
  ONESQL_ASSIGN_OR_RETURN(event.row, DecodeRow(*row, def->schema));
  return event;
}

std::shared_ptr<const std::string> EncodeDeltaPayload(
    const exec::Emission& e) {
  std::string payload = "\"row\":";
  EncodeRow(e.row).SerializeTo(&payload);
  payload += ",\"undo\":";
  payload += e.undo ? "true" : "false";
  payload += ",\"ptime\":";
  payload += std::to_string(e.ptime.millis());
  payload += ",\"ver\":";
  payload += std::to_string(e.ver);
  payload += "}";
  return std::make_shared<const std::string>(std::move(payload));
}

std::string EncodeDeltaLine(uint64_t sub, uint64_t seq,
                            const std::string& payload) {
  std::string line = "{\"push\":\"delta\",\"sub\":";
  line += std::to_string(sub);
  line += ",\"seq\":";
  line += std::to_string(seq);
  line += ",";
  line += payload;
  return line;
}

std::string EncodeDeltaLine(uint64_t sub, uint64_t seq,
                            const exec::Emission& e) {
  return EncodeDeltaLine(sub, seq, *EncodeDeltaPayload(e));
}

Result<Json> EncodeExplainAnalysis(const ExplainAnalysis& analysis) {
  Result<Json> parsed = Json::Parse(analysis.json);
  if (!parsed.ok()) {
    return Status::Internal("EXPLAIN ANALYZE produced malformed JSON: " +
                            parsed.status().message());
  }
  return parsed;
}

}  // namespace server
}  // namespace onesql
