#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace onesql {
namespace server {

TcpServer::TcpServer(std::shared_ptr<ServerCore> core, int listen_fd,
                     int port)
    : core_(std::move(core)), listen_fd_(listen_fd), port_(port) {}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    std::shared_ptr<ServerCore> core, int port) {
  if (core == nullptr) {
    return Status::InvalidArgument("TcpServer needs a ServerCore");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }

  auto server = std::unique_ptr<TcpServer>(
      new TcpServer(std::move(core), fd, ntohs(addr.sin_port)));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Result<uint64_t> session = core_->OpenSession();
    if (!session.ok()) {
      // Admission control: reject with one well-formed error line so the
      // client knows why, then close.
      std::string line = "{\"ok\":false,\"error\":";
      AppendJsonString(session.status().message(), &line);
      line += "}\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->session = session.value();
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        core_->CloseSession(raw->session);
        ::close(fd);
        continue;
      }
      connections_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
  }
}

bool TcpServer::WriteLine(Connection* conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t sent = 0;
  std::string framed = line;
  framed.push_back('\n');
  while (sent < framed.size()) {
    const ssize_t n = ::send(conn->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void TcpServer::ReaderLoop(Connection* conn) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or socket shut down
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = core_->HandleLine(conn->session, line);
      if (!WriteLine(conn, response)) {
        start = buffer.size();
        break;
      }
    }
    buffer.erase(0, start);
  }
  // Disconnect (possibly mid-feed): tear the session down — subscriptions
  // cancel, handles release, shared plans retire when this was the last
  // subscriber — and unblock the writer.
  core_->CloseSession(conn->session);
  ::shutdown(conn->fd, SHUT_RDWR);
}

void TcpServer::WriterLoop(Connection* conn) {
  std::vector<std::shared_ptr<const std::string>> lines;
  while (core_->WaitOutbound(conn->session, &lines)) {
    for (const auto& line : lines) {
      if (!WriteLine(conn, *line)) {
        core_->CloseSession(conn->session);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
    }
  }
  // Session closed (client drop, server stop, or slow-subscriber overflow
  // after its error line was flushed above): release the socket so the
  // reader unblocks too.
  ::shutdown(conn->fd, SHUT_RDWR);
}

void TcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);

  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    core_->CloseSession(conn->session);  // unblocks the writer
    ::shutdown(conn->fd, SHUT_RDWR);     // unblocks the reader
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
}

size_t TcpServer::num_connections() {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size();
}

}  // namespace server
}  // namespace onesql
