#ifndef ONESQL_SERVER_SERVER_CORE_H_
#define ONESQL_SERVER_SERVER_CORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "server/json.h"
#include "server/wire.h"

namespace onesql {
namespace server {

/// Admission-control and behavior knobs for the standing-query server
/// (DESIGN.md §13).
struct ServerOptions {
  /// Maximum concurrently open sessions; OpenSession fails past this.
  int max_sessions = 64;
  /// Maximum live engine queries (shared plans count once no matter how many
  /// subscribers ride them); `submit` that would start a new operator tree
  /// fails past this.
  int max_queries = 64;
  /// Backpressure bound: outbound lines buffered per session. A subscriber
  /// that falls further behind than this is disconnected with a pushed
  /// error (dropping it is the only alternative to unbounded memory — the
  /// changelog is replayable via `subscribe {"from_seq": N}`, so a dropped
  /// subscriber can resume without loss).
  size_t max_session_queue = 1024;
  /// Default shard count for submitted queries (0 = hardware concurrency).
  int default_shards = 1;
  /// When set, the server restores from this directory at startup and runs
  /// with a write-ahead feed log; the `checkpoint` command persists all
  /// standing queries for the next restart.
  std::string durable_dir;
  /// Attach the metrics registry (per-session / per-shared-plan labels in
  /// both expositions; the `metrics` command serves them).
  bool metrics = true;
  /// Enable query-level profiling (DESIGN.md §15): the `explain` command's
  /// sampled wall-time / batch-size / kernel-path annotations, plus the
  /// fan-out stall histogram. Requires `metrics`; ignored without it.
  bool profiling = false;
};

/// The transport-independent server: sessions, the wire-command dispatcher,
/// the shared-plan cache, and the subscription fan-out. The TCP listener
/// (tcp_server.h) is a thin shell around this; tests and the fuzzer's
/// sharing oracle drive it directly through HandleLine.
///
/// Multi-tenant plan sharing: `submit` with `"share": true` fingerprints the
/// canonicalized plan (plan/fingerprint.h) and, when an identical standing
/// query is already running, attaches the session to it instead of starting
/// a second operator tree — the per-subscriber cost is one handle plus a
/// sink-side fan-out cursor, so 10k subscribers of one NEXMark Q7 variant
/// drive exactly one windowed-aggregation operator.
///
/// Threading: one mutex serializes all engine access and registry mutation;
/// each session's outbound queue has its own lock + condvar so socket writer
/// threads block without holding the server lock.
class ServerCore {
 public:
  /// Creates a server around a fresh engine. With `durable_dir` set, the
  /// engine restores from it (adopting checkpointed standing queries into
  /// the plan cache) and re-attaches the feed log.
  static Result<std::unique_ptr<ServerCore>> Create(
      const ServerOptions& options);

  /// Creates a server around an injected engine — how the sharing oracle
  /// serves a `CloneRegistrations()` clone of the engine under test. Any
  /// queries already running on it are adopted as resident cache entries.
  static Result<std::unique_ptr<ServerCore>> Create(
      const ServerOptions& options, std::unique_ptr<Engine> engine);

  ~ServerCore();

  /// Opens a session; fails with ResourceExhausted-style InvalidArgument
  /// once `max_sessions` are open.
  Result<uint64_t> OpenSession();

  /// Closes a session: cancels its subscriptions, releases its query
  /// handles (retiring shared plans whose last subscriber this was), and
  /// wakes any writer blocked on its outbound queue.
  void CloseSession(uint64_t session);

  /// Handles one request line and returns the response line (no trailing
  /// newline). Changelog deltas provoked by the command are queued on the
  /// subscribed sessions' outbound queues, not returned here.
  std::string HandleLine(uint64_t session, const std::string& line);

  /// Non-blocking drain of a session's outbound push queue.
  std::vector<std::shared_ptr<const std::string>> DrainOutbound(
      uint64_t session);

  /// Blocking drain: waits until lines are queued or the session closes.
  /// Returns false (with `out` empty) once the session is closed and fully
  /// drained — the writer thread's exit condition.
  bool WaitOutbound(uint64_t session,
                    std::vector<std::shared_ptr<const std::string>>* out);

  /// True while the session is open and healthy (not overflow-disconnected).
  bool SessionOpen(uint64_t session);

  // -- Introspection (tests, benchmarks) ------------------------------------
  Engine* engine() { return engine_.get(); }
  size_t num_sessions();
  size_t num_plans();
  size_t num_subscriptions();
  const ServerOptions& options() const { return options_; }

 private:
  struct Session {
    uint64_t id = 0;
    /// Plan handles held (entry id -> count). Each handle is one engine
    /// reference; submit/attach adds one, `drop` or session close releases.
    std::map<uint64_t, int> handles;
    const obs::SessionMetrics* metrics = nullptr;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<const std::string>> outbound;
    bool closed = false;
    bool overflowed = false;
  };

  /// One live engine query behind the cache, shared by every session handle
  /// attached to it.
  struct PlanEntry {
    uint64_t id = 0;  // wire name "p<id>"
    ContinuousQuery* query = nullptr;
    std::string fp_hex;
    std::string canonical;  // share-cache key (full canonical plan text)
    int handles = 0;        // session handles == engine references held
    /// Restored from a checkpoint: the entry owns one extra engine
    /// reference, so the query survives with zero subscribers (it is part
    /// of the durable state and must be there after the next restart).
    bool resident = false;
    /// Changelog length at the last fan-out. Every live subscription sits at
    /// this cursor between commands (subscribe delivers its backlog
    /// synchronously), so Pump skips the plan when nothing new emitted.
    uint64_t fanned_out = 0;
    const obs::SharedPlanMetrics* metrics = nullptr;
  };

  struct Subscription {
    uint64_t id = 0;
    uint64_t session = 0;
    uint64_t plan = 0;
    uint64_t next_seq = 0;  // cursor into the query's emission changelog
  };

  ServerCore(const ServerOptions& options, std::unique_ptr<Engine> engine);

  Status Init();
  /// Adopts every query already running on the engine (restored from a
  /// checkpoint, or pre-executed on an injected engine) as a resident entry.
  void AdoptEngineQueries();

  // Command handlers; all called with mu_ held.
  Json Dispatch(Session* session, const Json& request);
  Json CmdHello(Session* session, const Json& request);
  Json CmdRegisterStream(Session* session, const Json& request);
  Json CmdRegisterTable(Session* session, const Json& request);
  Json CmdSubmit(Session* session, const Json& request);
  Json CmdFeed(Session* session, const Json& request);
  Json CmdAdvance(Session* session, const Json& request);
  Json CmdSnapshot(Session* session, const Json& request);
  Json CmdSubscribe(Session* session, const Json& request);
  Json CmdUnsubscribe(Session* session, const Json& request);
  Json CmdDrop(Session* session, const Json& request);
  Json CmdCheckpoint(Session* session, const Json& request);
  Json CmdStats(Session* session, const Json& request);
  Json CmdMetrics(Session* session, const Json& request);
  Json CmdExplain(Session* session, const Json& request);

  /// Advances every subscription cursor over its query's changelog, fanning
  /// new emissions out to the subscribed sessions. Each emission's payload
  /// is encoded once and shared across subscribers; plans with no new
  /// emissions are skipped entirely. Call after any command that can move a
  /// sink (feed, advance).
  void Pump();

  /// Per-plan cache of encoded emission payloads, so one fan-out serializes
  /// each row exactly once no matter how many subscribers ride the plan.
  using PayloadCache =
      std::unordered_map<uint64_t, std::shared_ptr<const std::string>>;

  /// Pushes `sub`'s outstanding changelog suffix to its session and advances
  /// the cursor. Returns true when the session overflowed in the process
  /// (caller must TearDownOverflowed after it finishes iterating).
  bool PushDeltas(PlanEntry& entry, Subscription& sub, PayloadCache* payloads);

  /// Disconnects overflowed subscribers: cancels their subscriptions and
  /// releases their handles. The sessions stay registered — still holding
  /// the buffered tail plus the error push — until the transport observes
  /// the failure and calls CloseSession.
  void TearDownOverflowed(const std::vector<uint64_t>& session_ids);

  /// Erases a subscription and its plan-index entry; returns the next
  /// iterator.
  std::map<uint64_t, Subscription>::iterator EraseSub(
      std::map<uint64_t, Subscription>::iterator it);

  /// Queues `line` on a session's outbound queue, enforcing the
  /// backpressure bound. On overflow the session is marked failed, an error
  /// line replaces the tail, and the writer is woken to flush-and-close.
  void PushLine(Session* session, std::shared_ptr<const std::string> line);

  /// Releases one handle on `plan_id` held by `session`, retiring the plan
  /// (engine drop, cache erase, subscription cancel) when the last
  /// reference goes. Caller holds mu_.
  Status ReleaseHandle(Session* session, uint64_t plan_id);

  PlanEntry* FindPlanByName(const std::string& name);
  Session* FindSession(uint64_t id);

  void UpdateGauges();

  static Json Error(const Json& request, const Status& status);
  static Json Ok(const Json& request);

  const ServerOptions options_;
  std::unique_ptr<Engine> engine_;

  std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::map<uint64_t, PlanEntry> plans_;  // ordered: deterministic pump order
  std::unordered_map<std::string, uint64_t> share_index_;  // canonical -> id
  std::map<uint64_t, Subscription> subs_;
  /// Plan id -> its subscription ids, kept in lockstep with subs_ so the
  /// fan-out never scans subscriptions of other plans.
  std::map<uint64_t, std::set<uint64_t>> plan_subs_;
  uint64_t next_session_id_ = 1;
  uint64_t next_plan_id_ = 0;
  uint64_t next_sub_id_ = 1;

  const obs::ServerMetrics* metrics_ = nullptr;
  /// Fan-out stall attribution; null unless profiling is enabled.
  const obs::ServerProfileMetrics* profile_ = nullptr;
};

}  // namespace server
}  // namespace onesql

#endif  // ONESQL_SERVER_SERVER_CORE_H_
