#ifndef ONESQL_SERVER_WIRE_H_
#define ONESQL_SERVER_WIRE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"
#include "engine/engine.h"
#include "exec/sink.h"
#include "server/json.h"

namespace onesql {
namespace server {

/// Value / row / schema codecs for the line-delimited JSON wire protocol
/// (DESIGN.md §13). Shared by the server core, the tests, and the fuzzer's
/// sharing oracle, so there is exactly one encoding of every engine type.

/// Value -> JSON by runtime type: NULL -> null, BOOLEAN -> bool, BIGINT ->
/// int, DOUBLE -> number (round-trip precision), VARCHAR -> string,
/// TIMESTAMP -> int milliseconds, INTERVAL -> int milliseconds. Timestamps
/// and intervals are indistinguishable from BIGINT on the wire — the client
/// disambiguates by the declared schema, exactly as rows carry no type tags
/// inside the engine.
Json EncodeValue(const Value& v);

/// JSON -> Value under a declared column type. Integers widen to DOUBLE
/// columns; null decodes as SQL NULL for any type.
Result<Value> DecodeValue(const Json& j, DataType type);

Json EncodeRow(const Row& row);
Result<Row> DecodeRow(const Json& j, const Schema& schema);

/// Schema <-> JSON: an array of {"name": ..., "type": "BIGINT" | ... ,
/// "event_time": bool?} objects.
Json EncodeSchema(const Schema& schema);
Result<Schema> DecodeSchema(const Json& j);

Result<DataType> ParseDataType(const std::string& name);

/// Feed events: {"kind": "insert"|"delete"|"watermark", "source": ...,
/// "ptime": ms, "row": [...] | "watermark": ms}.
Json EncodeFeedEvent(const FeedEvent& event);
Result<FeedEvent> DecodeFeedEvent(const Json& j, const plan::Catalog& catalog);

/// The payload fragment shared by every subscriber of one emission:
/// `"row":[...],"undo":bool,"ptime":ms,"ver":N}` — everything after the
/// per-subscriber prefix. Encoded once per emission and fanned out by
/// shared_ptr, so pushing to 10k subscribers serializes each row once.
std::shared_ptr<const std::string> EncodeDeltaPayload(const exec::Emission& e);

/// One complete pushed changelog line (no trailing newline):
/// {"push":"delta","sub":<sub>,"seq":<seq>,<payload...>}. `seq` is the
/// emission's index in the query's changelog — the re-subscription cursor.
std::string EncodeDeltaLine(uint64_t sub, uint64_t seq,
                            const std::string& payload);

/// Convenience for tests and the sharing oracle: the full line for an
/// emission, built through the same payload path the server uses.
std::string EncodeDeltaLine(uint64_t sub, uint64_t seq,
                            const exec::Emission& e);

/// The `explain` response body: Engine::ExplainAnalyze's JSON rendering
/// re-parsed into the wire document model, so clients receive a structured
/// "analysis" object rather than a doubly-encoded string. Fails (Internal)
/// if the analysis JSON is malformed — a renderer bug, not client error.
Result<Json> EncodeExplainAnalysis(const ExplainAnalysis& analysis);

}  // namespace server
}  // namespace onesql

#endif  // ONESQL_SERVER_WIRE_H_
