#ifndef ONESQL_SERVER_TCP_SERVER_H_
#define ONESQL_SERVER_TCP_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/server_core.h"

namespace onesql {
namespace server {

/// The TCP transport for the standing-query server: a POSIX listener on
/// 127.0.0.1 speaking the line-delimited JSON protocol (DESIGN.md §13).
/// Each connection is one session with two threads — a reader that feeds
/// request lines into ServerCore::HandleLine and writes the responses, and
/// a writer that blocks on the session's outbound queue flushing pushed
/// changelog deltas. Responses and pushes share the socket; writes are
/// serialized by a per-connection mutex so lines never interleave.
///
///   $ nc localhost 7687
///   {"cmd":"hello"}
///   {"ok":true,"server":"onesql","protocol":1,"durable":false}
class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()),
  /// starts the accept loop, and returns. The server runs until Stop().
  static Result<std::unique_ptr<TcpServer>> Start(
      std::shared_ptr<ServerCore> core, int port);

  ~TcpServer();

  /// The bound port (the resolved one when started with port 0).
  int port() const { return port_; }

  /// Stops accepting, closes every connection, and joins all threads.
  /// Idempotent; the destructor calls it.
  void Stop();

  size_t num_connections();

 private:
  struct Connection {
    int fd = -1;
    uint64_t session = 0;
    std::thread reader;
    std::thread writer;
    std::mutex write_mu;  // serializes response + push writes on the socket
  };

  TcpServer(std::shared_ptr<ServerCore> core, int listen_fd, int port);

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Writes one line (appending '\n') under the connection's write lock.
  /// Returns false once the socket is gone.
  bool WriteLine(Connection* conn, const std::string& line);

  std::shared_ptr<ServerCore> core_;
  int listen_fd_;
  int port_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace server
}  // namespace onesql

#endif  // ONESQL_SERVER_TCP_SERVER_H_
