#include "server/server_core.h"

#include <algorithm>
#include <utility>

#include "plan/fingerprint.h"

namespace onesql {
namespace server {

namespace {

constexpr int kProtocolVersion = 1;

Result<int64_t> GetInt(const Json& request, const char* key,
                       int64_t fallback) {
  const Json* j = request.Find(key);
  if (j == nullptr) return fallback;
  if (!j->is_int()) {
    return Status::InvalidArgument(std::string("\"") + key +
                                   "\" must be an integer");
  }
  return j->AsInt();
}

Result<bool> GetBool(const Json& request, const char* key, bool fallback) {
  const Json* j = request.Find(key);
  if (j == nullptr) return fallback;
  if (!j->is_bool()) {
    return Status::InvalidArgument(std::string("\"") + key +
                                   "\" must be a boolean");
  }
  return j->AsBool();
}

Result<std::string> GetString(const Json& request, const char* key) {
  const Json* j = request.Find(key);
  if (j == nullptr || !j->is_string()) {
    return Status::InvalidArgument(std::string("request needs string \"") +
                                   key + "\"");
  }
  return j->AsString();
}

}  // namespace

ServerCore::ServerCore(const ServerOptions& options,
                       std::unique_ptr<Engine> engine)
    : options_(options), engine_(std::move(engine)) {}

Result<std::unique_ptr<ServerCore>> ServerCore::Create(
    const ServerOptions& options) {
  return Create(options, std::make_unique<Engine>());
}

Result<std::unique_ptr<ServerCore>> ServerCore::Create(
    const ServerOptions& options, std::unique_ptr<Engine> engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("ServerCore needs an engine");
  }
  auto core = std::unique_ptr<ServerCore>(
      new ServerCore(options, std::move(engine)));
  ONESQL_RETURN_NOT_OK(core->Init());
  return core;
}

Status ServerCore::Init() {
  if (options_.metrics && !engine_->observability_enabled()) {
    obs::ObsOptions obs;
    obs.metrics = true;
    obs.profiling = options_.profiling;
    ONESQL_RETURN_NOT_OK(engine_->EnableObservability(obs));
  }
  if (engine_->obs() != nullptr) {
    metrics_ = engine_->obs()->ForServer();
    // Null unless the engine's observability has profiling on (either via
    // options_.profiling above or pre-enabled on an injected engine).
    profile_ = engine_->obs()->ForServerProfile();
  }
  if (!options_.durable_dir.empty()) {
    // Restore first (standing queries come back from the checkpoint with
    // their operator state and the WAL suffix replayed). Restoring a run
    // that was durable re-attaches its feed log; a first boot on an empty
    // directory does not, so attach one here.
    ONESQL_RETURN_NOT_OK(engine_->Restore(options_.durable_dir));
    if (!engine_->durable()) {
      ONESQL_RETURN_NOT_OK(engine_->EnableDurability(options_.durable_dir));
    }
  }
  AdoptEngineQueries();
  UpdateGauges();
  return Status::OK();
}

void ServerCore::AdoptEngineQueries() {
  for (size_t i = 0; i < engine_->num_queries(); ++i) {
    ContinuousQuery* query = engine_->query(i);
    bool known = false;
    for (const auto& [id, entry] : plans_) {
      if (entry.query == query) {
        known = true;
        break;
      }
    }
    if (known) continue;
    PlanEntry entry;
    entry.id = next_plan_id_++;
    entry.query = query;
    entry.fp_hex = query->plan_fingerprint().ToHex();
    entry.canonical = query->plan_fingerprint().canonical;
    entry.handles = 0;
    // Restored (or pre-executed) queries are resident: the engine reference
    // they were created with belongs to the server, so they survive with
    // zero subscribers and are checkpointed for the next restart.
    entry.resident = true;
    if (engine_->obs() != nullptr) {
      entry.metrics =
          engine_->obs()->ForSharedPlan("p" + std::to_string(entry.id));
    }
    share_index_.emplace(entry.canonical, entry.id);
    plans_.emplace(entry.id, std::move(entry));
  }
}

ServerCore::~ServerCore() {
  std::vector<uint64_t> open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) open.push_back(id);
  }
  for (uint64_t id : open) CloseSession(id);
}

Result<uint64_t> ServerCore::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= static_cast<size_t>(options_.max_sessions)) {
    return Status::OutOfRange(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " open sessions)");
  }
  auto session = std::make_shared<Session>();
  session->id = next_session_id_++;
  if (engine_->obs() != nullptr) {
    session->metrics =
        engine_->obs()->ForSession("s" + std::to_string(session->id));
  }
  const uint64_t id = session->id;
  sessions_.emplace(id, std::move(session));
  if (metrics_ != nullptr) metrics_->sessions_opened->Increment();
  UpdateGauges();
  return id;
}

ServerCore::Session* ServerCore::FindSession(uint64_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

ServerCore::PlanEntry* ServerCore::FindPlanByName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'p') return nullptr;
  uint64_t id = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return nullptr;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  auto it = plans_.find(id);
  return it == plans_.end() ? nullptr : &it->second;
}

Status ServerCore::ReleaseHandle(Session* session, uint64_t plan_id) {
  auto plan_it = plans_.find(plan_id);
  if (plan_it == plans_.end()) {
    return Status::NotFound("unknown query handle");
  }
  PlanEntry& entry = plan_it->second;
  auto handle_it = session->handles.find(plan_id);
  if (handle_it == session->handles.end() || handle_it->second <= 0) {
    return Status::NotFound("session holds no handle on this query");
  }
  if (--handle_it->second == 0) {
    session->handles.erase(handle_it);
    // No handle left in this session: its subscriptions on the plan die too.
    for (auto it = subs_.begin(); it != subs_.end();) {
      if (it->second.session == session->id && it->second.plan == plan_id) {
        it = EraseSub(it);
      } else {
        ++it;
      }
    }
  }
  --entry.handles;
  ONESQL_RETURN_NOT_OK(engine_->DropQuery(entry.query));
  if (entry.handles == 0 && !entry.resident) {
    // Last subscriber of a non-resident plan: the DropQuery above released
    // the final engine reference, so the operator tree is gone. Retire the
    // cache entry and every remaining subscription riding it.
    if (entry.metrics != nullptr) entry.metrics->subscribers->Set(0);
    auto share_it = share_index_.find(entry.canonical);
    if (share_it != share_index_.end() && share_it->second == plan_id) {
      share_index_.erase(share_it);
    }
    for (auto it = subs_.begin(); it != subs_.end();) {
      if (it->second.plan == plan_id) {
        it = EraseSub(it);
      } else {
        ++it;
      }
    }
    plans_.erase(plan_it);
  }
  return Status::OK();
}

void ServerCore::CloseSession(uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = it->second;
    // Cancel the session's subscriptions before releasing handles, so the
    // handle release does not double-erase them.
    for (auto sub = subs_.begin(); sub != subs_.end();) {
      if (sub->second.session == id) {
        sub = EraseSub(sub);
      } else {
        ++sub;
      }
    }
    // Release every handle (a handle held N times releases N references).
    std::vector<std::pair<uint64_t, int>> handles(session->handles.begin(),
                                                  session->handles.end());
    for (const auto& [plan_id, count] : handles) {
      for (int i = 0; i < count; ++i) {
        (void)ReleaseHandle(session.get(), plan_id);
      }
    }
    sessions_.erase(it);
    UpdateGauges();
  }
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->closed = true;
  }
  session->cv.notify_all();
}

bool ServerCore::SessionOpen(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindSession(id);
  if (session == nullptr) return false;
  std::lock_guard<std::mutex> qlock(session->mu);
  return !session->closed && !session->overflowed;
}

// ---------------------------------------------------------------------------
// Outbound queues
// ---------------------------------------------------------------------------

void ServerCore::PushLine(Session* session,
                          std::shared_ptr<const std::string> line) {
  bool overflowed_now = false;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (session->closed || session->overflowed) return;
    if (session->outbound.size() >= options_.max_session_queue) {
      // The subscriber cannot keep up. Drop it cleanly: replace the queue
      // tail with an error push and mark the session failed; the writer
      // flushes what is buffered and closes. The changelog itself is
      // replayable (subscribe {"from_seq": N}), so nothing is lost for a
      // client that reconnects.
      session->overflowed = true;
      session->outbound.push_back(std::make_shared<const std::string>(
          "{\"push\":\"error\",\"error\":\"subscriber too slow: outbound "
          "queue overflow (" +
          std::to_string(options_.max_session_queue) +
          " lines); resubscribe with from_seq to resume\"}"));
      overflowed_now = true;
    } else {
      session->outbound.push_back(std::move(line));
    }
    if (session->metrics != nullptr) {
      session->metrics->queue_depth->Set(
          static_cast<int64_t>(session->outbound.size()));
    }
  }
  session->cv.notify_all();
  if (overflowed_now && metrics_ != nullptr) {
    metrics_->sessions_overflowed->Increment();
  }
}

std::vector<std::shared_ptr<const std::string>> ServerCore::DrainOutbound(
    uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return {};
    session = it->second;
  }
  std::lock_guard<std::mutex> lock(session->mu);
  std::vector<std::shared_ptr<const std::string>> out(
      session->outbound.begin(), session->outbound.end());
  session->outbound.clear();
  if (session->metrics != nullptr) session->metrics->queue_depth->Set(0);
  return out;
}

bool ServerCore::WaitOutbound(
    uint64_t id, std::vector<std::shared_ptr<const std::string>>* out) {
  out->clear();
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    session = it->second;
  }
  std::unique_lock<std::mutex> lock(session->mu);
  session->cv.wait(lock, [&] {
    return !session->outbound.empty() || session->closed ||
           session->overflowed;
  });
  out->assign(session->outbound.begin(), session->outbound.end());
  session->outbound.clear();
  if (session->metrics != nullptr) session->metrics->queue_depth->Set(0);
  // An overflowed session delivers its final error line and then reports
  // closed, so the writer flushes and exits.
  return !out->empty() || !(session->closed || session->overflowed);
}

// ---------------------------------------------------------------------------
// Command dispatch
// ---------------------------------------------------------------------------

Json ServerCore::Error(const Json& request, const Status& status) {
  Json out = Json::Object();
  const Json* id = request.Find("id");
  if (id != nullptr) out.Set("id", *id);
  out.Set("ok", Json::Bool(false));
  out.Set("error", Json::Str(status.message()));
  out.Set("code", Json::Str(StatusCodeToString(status.code())));
  return out;
}

Json ServerCore::Ok(const Json& request) {
  Json out = Json::Object();
  const Json* id = request.Find("id");
  if (id != nullptr) out.Set("id", *id);
  out.Set("ok", Json::Bool(true));
  return out;
}

std::string ServerCore::HandleLine(uint64_t session_id,
                                   const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    return Error(Json::Object(), parsed.status()).Serialize();
  }
  const Json& request = parsed.value();
  Session* session = FindSession(session_id);
  if (session == nullptr) {
    return Error(request, Status::NotFound("unknown session")).Serialize();
  }
  if (metrics_ != nullptr) metrics_->commands->Increment();
  if (session->metrics != nullptr) session->metrics->commands->Increment();
  Json response = Dispatch(session, request);
  const Json* ok = response.Find("ok");
  if (metrics_ != nullptr && ok != nullptr && !ok->AsBool()) {
    metrics_->command_errors->Increment();
  }
  return response.Serialize();
}

Json ServerCore::Dispatch(Session* session, const Json& request) {
  if (!request.is_object()) {
    return Error(request,
                 Status::InvalidArgument("request must be a JSON object"));
  }
  Result<std::string> cmd = GetString(request, "cmd");
  if (!cmd.ok()) return Error(request, cmd.status());
  const std::string& name = cmd.value();
  if (name == "hello") return CmdHello(session, request);
  if (name == "register_stream") return CmdRegisterStream(session, request);
  if (name == "register_table") return CmdRegisterTable(session, request);
  if (name == "submit") return CmdSubmit(session, request);
  if (name == "feed") return CmdFeed(session, request);
  if (name == "advance") return CmdAdvance(session, request);
  if (name == "snapshot") return CmdSnapshot(session, request);
  if (name == "subscribe") return CmdSubscribe(session, request);
  if (name == "unsubscribe") return CmdUnsubscribe(session, request);
  if (name == "drop") return CmdDrop(session, request);
  if (name == "checkpoint") return CmdCheckpoint(session, request);
  if (name == "stats") return CmdStats(session, request);
  if (name == "metrics") return CmdMetrics(session, request);
  if (name == "explain") return CmdExplain(session, request);
  return Error(request,
               Status::InvalidArgument("unknown command '" + name + "'"));
}

Json ServerCore::CmdHello(Session* session, const Json& request) {
  (void)session;
  Json out = Ok(request);
  out.Set("server", Json::Str("onesql"));
  out.Set("protocol", Json::Int(kProtocolVersion));
  out.Set("durable", Json::Bool(!options_.durable_dir.empty()));
  return out;
}

Json ServerCore::CmdRegisterStream(Session* session, const Json& request) {
  (void)session;
  Result<std::string> name = GetString(request, "name");
  if (!name.ok()) return Error(request, name.status());
  const Json* schema_json = request.Find("schema");
  if (schema_json == nullptr) {
    return Error(request, Status::InvalidArgument("request needs \"schema\""));
  }
  Result<Schema> schema = DecodeSchema(*schema_json);
  if (!schema.ok()) return Error(request, schema.status());
  Status status = engine_->RegisterStream(name.value(), schema.value());
  if (!status.ok()) return Error(request, status);
  return Ok(request);
}

Json ServerCore::CmdRegisterTable(Session* session, const Json& request) {
  (void)session;
  Result<std::string> name = GetString(request, "name");
  if (!name.ok()) return Error(request, name.status());
  const Json* schema_json = request.Find("schema");
  if (schema_json == nullptr) {
    return Error(request, Status::InvalidArgument("request needs \"schema\""));
  }
  Result<Schema> schema = DecodeSchema(*schema_json);
  if (!schema.ok()) return Error(request, schema.status());
  std::vector<Row> rows;
  const Json* rows_json = request.Find("rows");
  if (rows_json != nullptr) {
    if (!rows_json->is_array()) {
      return Error(request,
                   Status::InvalidArgument("\"rows\" must be an array"));
    }
    rows.reserve(rows_json->items().size());
    for (const Json& r : rows_json->items()) {
      Result<Row> row = DecodeRow(r, schema.value());
      if (!row.ok()) return Error(request, row.status());
      rows.push_back(std::move(row).value());
    }
  }
  Status status =
      engine_->RegisterTable(name.value(), schema.value(), std::move(rows));
  if (!status.ok()) return Error(request, status);
  return Ok(request);
}

Json ServerCore::CmdSubmit(Session* session, const Json& request) {
  Result<std::string> sql = GetString(request, "sql");
  if (!sql.ok()) return Error(request, sql.status());
  Result<int64_t> lateness = GetInt(request, "lateness_ms", 0);
  if (!lateness.ok()) return Error(request, lateness.status());
  Result<int64_t> shards =
      GetInt(request, "shards", options_.default_shards);
  if (!shards.ok()) return Error(request, shards.status());
  Result<bool> share = GetBool(request, "share", false);
  if (!share.ok()) return Error(request, share.status());

  ExecutionOptions opts;
  opts.allowed_lateness = Interval(lateness.value());
  opts.shards = static_cast<int>(shards.value());
  opts.share = share.value();

  auto attach = [&](PlanEntry& entry) -> Json {
    Status ref = engine_->RefQuery(entry.query);
    if (!ref.ok()) return Error(request, ref);
    ++entry.handles;
    ++session->handles[entry.id];
    if (metrics_ != nullptr) metrics_->shared_hits->Increment();
    UpdateGauges();
    Json out = Ok(request);
    out.Set("query", Json::Str("p" + std::to_string(entry.id)));
    out.Set("fingerprint", Json::Str(entry.fp_hex));
    out.Set("shared", Json::Bool(true));
    out.Set("seq", Json::Int(static_cast<int64_t>(
                       entry.query->Emissions().size())));
    return out;
  };

  if (opts.share) {
    // Fingerprint the canonicalized plan and route onto a running identical
    // query when one exists — the multi-tenant sharing fast path.
    Result<plan::QueryPlan> planned = engine_->Plan(sql.value());
    if (!planned.ok()) return Error(request, planned.status());
    plan::QueryPlan plan = std::move(planned).value();
    plan.allowed_lateness = opts.allowed_lateness;
    const plan::PlanFingerprint fp = plan::FingerprintPlan(plan);
    auto it = share_index_.find(fp.canonical);
    if (it != share_index_.end()) {
      return attach(plans_.at(it->second));
    }
  }

  if (plans_.size() >= static_cast<size_t>(options_.max_queries)) {
    return Error(request,
                 Status::OutOfRange("standing-query limit reached (" +
                                    std::to_string(options_.max_queries) +
                                    " live queries)"));
  }
  Result<ContinuousQuery*> executed = engine_->Execute(sql.value(), opts);
  if (!executed.ok()) {
    if (executed.status().code() == StatusCode::kAlreadyExists) {
      // A duplicate is running that the share index missed (e.g. raced in
      // on another path). Locate it by fingerprint and attach.
      Result<plan::QueryPlan> planned = engine_->Plan(sql.value());
      if (planned.ok()) {
        plan::QueryPlan plan = std::move(planned).value();
        plan.allowed_lateness = opts.allowed_lateness;
        ContinuousQuery* existing =
            engine_->FindQuery(plan::FingerprintPlan(plan));
        for (auto& [id, entry] : plans_) {
          if (entry.query == existing) return attach(entry);
        }
      }
    }
    return Error(request, executed.status());
  }

  ContinuousQuery* query = executed.value();
  PlanEntry entry;
  entry.id = next_plan_id_++;
  entry.query = query;
  entry.fp_hex = query->plan_fingerprint().ToHex();
  entry.canonical = query->plan_fingerprint().canonical;
  entry.handles = 1;
  if (engine_->obs() != nullptr) {
    entry.metrics =
        engine_->obs()->ForSharedPlan("p" + std::to_string(entry.id));
  }
  ++session->handles[entry.id];
  share_index_.emplace(entry.canonical, entry.id);  // first submission wins
  Json out = Ok(request);
  out.Set("query", Json::Str("p" + std::to_string(entry.id)));
  out.Set("fingerprint", Json::Str(entry.fp_hex));
  out.Set("shared", Json::Bool(false));
  out.Set("seq",
          Json::Int(static_cast<int64_t>(query->Emissions().size())));
  plans_.emplace(entry.id, std::move(entry));
  UpdateGauges();
  return out;
}

Json ServerCore::CmdFeed(Session* session, const Json& request) {
  (void)session;
  const Json* events_json = request.Find("events");
  if (events_json == nullptr || !events_json->is_array()) {
    return Error(request,
                 Status::InvalidArgument("request needs array \"events\""));
  }
  std::vector<FeedEvent> events;
  events.reserve(events_json->items().size());
  for (const Json& e : events_json->items()) {
    Result<FeedEvent> event = DecodeFeedEvent(e, engine_->catalog());
    if (!event.ok()) return Error(request, event.status());
    events.push_back(std::move(event).value());
  }
  Status status = engine_->Feed(events);
  // Even a partial feed (validation error mid-batch) dispatched its valid
  // prefix; push those deltas before reporting the error.
  Pump();
  if (!status.ok()) return Error(request, status);
  Json out = Ok(request);
  out.Set("accepted", Json::Int(static_cast<int64_t>(events.size())));
  return out;
}

Json ServerCore::CmdAdvance(Session* session, const Json& request) {
  (void)session;
  Result<int64_t> ptime = GetInt(request, "ptime", -1);
  if (!ptime.ok()) return Error(request, ptime.status());
  const Json* p = request.Find("ptime");
  if (p == nullptr) {
    return Error(request,
                 Status::InvalidArgument("request needs int \"ptime\""));
  }
  Status status = engine_->AdvanceTo(Timestamp(ptime.value()));
  Pump();
  if (!status.ok()) return Error(request, status);
  return Ok(request);
}

Json ServerCore::CmdSnapshot(Session* session, const Json& request) {
  Result<std::string> name = GetString(request, "query");
  if (!name.ok()) return Error(request, name.status());
  PlanEntry* entry = FindPlanByName(name.value());
  if (entry == nullptr) {
    return Error(request,
                 Status::NotFound("unknown query '" + name.value() + "'"));
  }
  if (session->handles.find(entry->id) == session->handles.end()) {
    return Error(request, Status::InvalidArgument(
                              "session holds no handle on '" + name.value() +
                              "' (submit it first, with \"share\": true to "
                              "attach to the running instance)"));
  }
  const Json* ptime = request.Find("ptime");
  Result<std::vector<Row>> rows =
      ptime != nullptr && ptime->is_int()
          ? entry->query->SnapshotAt(Timestamp(ptime->AsInt()))
          : entry->query->CurrentSnapshot();
  if (!rows.ok()) return Error(request, rows.status());
  Json out = Ok(request);
  out.Set("schema", EncodeSchema(entry->query->output_schema()));
  Json rendered = Json::Array();
  for (const Row& row : rows.value()) rendered.Add(EncodeRow(row));
  out.Set("rows", std::move(rendered));
  return out;
}

Json ServerCore::CmdSubscribe(Session* session, const Json& request) {
  Result<std::string> name = GetString(request, "query");
  if (!name.ok()) return Error(request, name.status());
  PlanEntry* entry = FindPlanByName(name.value());
  if (entry == nullptr) {
    return Error(request,
                 Status::NotFound("unknown query '" + name.value() + "'"));
  }
  if (session->handles.find(entry->id) == session->handles.end()) {
    return Error(request,
                 Status::InvalidArgument("session holds no handle on '" +
                                         name.value() + "'"));
  }
  const uint64_t end = entry->query->Emissions().size();
  // Default: push only deltas materialized from now on. from_seq rewinds
  // into the changelog — 0 replays it all; a reconnecting client passes the
  // last seq it saw plus one to receive exactly the missed suffix.
  Result<int64_t> from = GetInt(request, "from_seq",
                                static_cast<int64_t>(end));
  if (!from.ok()) return Error(request, from.status());
  if (from.value() < 0 || from.value() > static_cast<int64_t>(end)) {
    return Error(request, Status::OutOfRange(
                              "from_seq " + std::to_string(from.value()) +
                              " outside changelog [0, " +
                              std::to_string(end) + "]"));
  }
  Subscription sub;
  sub.id = next_sub_id_++;
  sub.session = session->id;
  sub.plan = entry->id;
  sub.next_seq = static_cast<uint64_t>(from.value());
  const uint64_t sub_id = sub.id;
  auto [sub_it, inserted] = subs_.emplace(sub_id, sub);
  (void)inserted;
  plan_subs_[entry->id].insert(sub_id);
  UpdateGauges();
  Json out = Ok(request);
  out.Set("sub", Json::Int(static_cast<int64_t>(sub_id)));
  out.Set("seq", Json::Int(static_cast<int64_t>(end)));
  // Deliver any backlog requested via from_seq to this subscriber alone —
  // every other subscription already sits at its plan's fanned_out cursor,
  // so a full Pump here would re-scan them for nothing (quadratic over a
  // burst of subscribes).
  PayloadCache payloads;
  const bool overflowed = PushDeltas(*entry, sub_it->second, &payloads);
  entry->fanned_out = entry->query->Emissions().size();
  // Tear-down last: it may retire the plan (releasing this session's final
  // handle), invalidating `entry`.
  if (overflowed) TearDownOverflowed({session->id});
  return out;
}

Json ServerCore::CmdUnsubscribe(Session* session, const Json& request) {
  Result<int64_t> sub = GetInt(request, "sub", -1);
  if (!sub.ok()) return Error(request, sub.status());
  auto it = subs_.find(static_cast<uint64_t>(sub.value()));
  if (it == subs_.end() || it->second.session != session->id) {
    return Error(request, Status::NotFound("unknown subscription"));
  }
  EraseSub(it);
  UpdateGauges();
  return Ok(request);
}

Json ServerCore::CmdDrop(Session* session, const Json& request) {
  Result<std::string> name = GetString(request, "query");
  if (!name.ok()) return Error(request, name.status());
  PlanEntry* entry = FindPlanByName(name.value());
  if (entry == nullptr) {
    return Error(request,
                 Status::NotFound("unknown query '" + name.value() + "'"));
  }
  Status status = ReleaseHandle(session, entry->id);
  if (!status.ok()) return Error(request, status);
  UpdateGauges();
  return Ok(request);
}

Json ServerCore::CmdCheckpoint(Session* session, const Json& request) {
  (void)session;
  if (options_.durable_dir.empty()) {
    return Error(request, Status::InvalidArgument(
                              "server is not durable (no durable_dir)"));
  }
  Status status = engine_->Checkpoint(options_.durable_dir);
  if (!status.ok()) return Error(request, status);
  return Ok(request);
}

Json ServerCore::CmdStats(Session* session, const Json& request) {
  (void)session;
  Json out = Ok(request);
  out.Set("sessions", Json::Int(static_cast<int64_t>(sessions_.size())));
  out.Set("queries", Json::Int(static_cast<int64_t>(plans_.size())));
  out.Set("subscriptions", Json::Int(static_cast<int64_t>(subs_.size())));
  int64_t handles = 0;
  for (const auto& [id, entry] : plans_) handles += entry.handles;
  out.Set("handles", Json::Int(handles));
  out.Set("engine_queries",
          Json::Int(static_cast<int64_t>(engine_->num_queries())));
  return out;
}

Json ServerCore::CmdMetrics(Session* session, const Json& request) {
  (void)session;
  if (engine_->obs() == nullptr || engine_->obs()->registry() == nullptr) {
    return Error(request,
                 Status::InvalidArgument("metrics are disabled on this "
                                         "server"));
  }
  const Json* format = request.Find("format");
  const bool as_json =
      format != nullptr && format->is_string() && format->AsString() == "json";
  UpdateGauges();
  obs::MetricsSnapshot snapshot = engine_->MetricsSnapshot();
  Json out = Ok(request);
  out.Set("format", Json::Str(as_json ? "json" : "prometheus"));
  out.Set("body",
          Json::Str(as_json ? snapshot.ToJson() : snapshot.ToPrometheus()));
  return out;
}

Json ServerCore::CmdExplain(Session* session, const Json& request) {
  (void)session;
  Result<std::string> name = GetString(request, "query");
  if (!name.ok()) return Error(request, name.status());
  PlanEntry* entry = FindPlanByName(name.value());
  if (entry == nullptr) {
    return Error(request,
                 Status::NotFound("unknown query '" + name.value() + "'"));
  }
  // Read-only diagnostics (like `metrics`): no plan handle required.
  Result<ExplainAnalysis> analysis = engine_->ExplainAnalyze(entry->query);
  if (!analysis.ok()) return Error(request, analysis.status());
  Result<Json> encoded = EncodeExplainAnalysis(analysis.value());
  if (!encoded.ok()) return Error(request, encoded.status());
  Json out = Ok(request);
  out.Set("query", Json::Str("p" + std::to_string(entry->id)));
  out.Set("text", Json::Str(analysis.value().text));
  out.Set("analysis", std::move(encoded).value());
  return out;
}

// ---------------------------------------------------------------------------
// Subscription fan-out
// ---------------------------------------------------------------------------

bool ServerCore::PushDeltas(PlanEntry& entry, Subscription& sub,
                            PayloadCache* payloads) {
  const auto& emissions = entry.query->Emissions();
  const uint64_t end = emissions.size();
  Session* session = FindSession(sub.session);
  if (session == nullptr) {
    sub.next_seq = end;
    return false;
  }
  uint64_t pushed = 0;
  for (uint64_t seq = sub.next_seq; seq < end; ++seq) {
    // Payload cache filled lazily: subscribers may sit at different cursors
    // (a fresh from_seq=0 subscriber next to a live one).
    auto cached = payloads->find(seq);
    if (cached == payloads->end()) {
      cached =
          payloads
              ->emplace(seq, EncodeDeltaPayload(
                                 emissions[static_cast<size_t>(seq)]))
              .first;
    }
    PushLine(session, std::make_shared<const std::string>(
                          EncodeDeltaLine(sub.id, seq, *cached->second)));
    ++pushed;
  }
  sub.next_seq = end;
  if (pushed > 0) {
    if (metrics_ != nullptr) metrics_->deltas_pushed->Add(pushed);
    if (session->metrics != nullptr) {
      session->metrics->deltas_pushed->Add(pushed);
    }
    if (entry.metrics != nullptr) entry.metrics->deltas_pushed->Add(pushed);
  }
  std::lock_guard<std::mutex> qlock(session->mu);
  return session->overflowed;
}

void ServerCore::Pump() {
  // Group cursor advancement by plan so each new emission's payload is
  // encoded exactly once and fanned out to every subscriber by pointer.
  // Between commands every live subscription sits at its plan's fanned_out
  // cursor, so a plan whose changelog has not grown is skipped without
  // touching its subscribers — a feed that moves one shared plan costs
  // O(its subscribers), not O(all subscriptions on the server).
  std::vector<uint64_t> overflowed;
  bool fanned = false;
  const uint64_t t0 =
      profile_ != nullptr ? obs::TraceRecorder::NowMicros() : 0;
  for (auto& [plan_id, sub_ids] : plan_subs_) {
    auto plan_it = plans_.find(plan_id);
    if (plan_it == plans_.end()) continue;
    PlanEntry& entry = plan_it->second;
    if (entry.query->Emissions().size() == entry.fanned_out) continue;
    fanned = true;
    PayloadCache payloads;
    for (uint64_t sub_id : sub_ids) {
      if (PushDeltas(entry, subs_.at(sub_id), &payloads)) {
        overflowed.push_back(subs_.at(sub_id).session);
      }
    }
    entry.fanned_out = entry.query->Emissions().size();
  }
  // One sample per pump that actually fanned out: time spent encoding and
  // queueing deltas is the sink-side backpressure a slow subscriber causes.
  if (profile_ != nullptr && fanned) {
    profile_->fanout_us->Record(obs::TraceRecorder::NowMicros() - t0);
  }
  TearDownOverflowed(overflowed);
}

void ServerCore::TearDownOverflowed(
    const std::vector<uint64_t>& session_ids) {
  // Tearing down mutates the subscription and handle maps the fan-out loop
  // iterates, so it runs strictly after it. The torn-down session keeps its
  // buffered lines plus the error push until the transport (or test)
  // observes the failure and calls CloseSession; WaitOutbound flushes the
  // tail once, then reports end-of-session.
  for (uint64_t session_id : session_ids) {
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) continue;
    Session* session = it->second.get();
    for (auto sub = subs_.begin(); sub != subs_.end();) {
      if (sub->second.session == session_id) {
        sub = EraseSub(sub);
      } else {
        ++sub;
      }
    }
    std::vector<std::pair<uint64_t, int>> handles(session->handles.begin(),
                                                  session->handles.end());
    for (const auto& [plan_id, count] : handles) {
      for (int i = 0; i < count; ++i) {
        (void)ReleaseHandle(session, plan_id);
      }
    }
    session->cv.notify_all();
  }
  if (!session_ids.empty()) UpdateGauges();
}

std::map<uint64_t, ServerCore::Subscription>::iterator ServerCore::EraseSub(
    std::map<uint64_t, Subscription>::iterator it) {
  auto ps = plan_subs_.find(it->second.plan);
  if (ps != plan_subs_.end()) {
    ps->second.erase(it->first);
    if (ps->second.empty()) plan_subs_.erase(ps);
  }
  return subs_.erase(it);
}

void ServerCore::UpdateGauges() {
  if (metrics_ != nullptr) {
    metrics_->sessions->Set(static_cast<int64_t>(sessions_.size()));
    metrics_->standing_queries->Set(static_cast<int64_t>(plans_.size()));
    metrics_->subscriptions->Set(static_cast<int64_t>(subs_.size()));
  }
  for (auto& [id, entry] : plans_) {
    if (entry.metrics != nullptr) {
      auto it = plan_subs_.find(id);
      entry.metrics->subscribers->Set(
          it == plan_subs_.end() ? 0
                                 : static_cast<int64_t>(it->second.size()));
    }
  }
}

size_t ServerCore::num_sessions() {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t ServerCore::num_plans() {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

size_t ServerCore::num_subscriptions() {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

}  // namespace server
}  // namespace onesql
