#include "server/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace onesql {
namespace server {

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::Add(Json item) {
  array_.push_back(std::move(item));
  return *this;
}

Json& Json::Set(const std::string& key, Json v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

namespace {

// Length of the well-formed UTF-8 sequence starting at s[i], or 0 if the
// bytes there are not valid UTF-8 (bad lead byte, truncated or malformed
// continuation, overlong encoding, surrogate code point, or > U+10FFFF).
size_t Utf8SequenceLength(const std::string& s, size_t i) {
  const auto byte = [&](size_t k) -> unsigned char {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  if (lead < 0x80) return 1;
  size_t len;
  uint32_t cp;
  if ((lead & 0xE0) == 0xC0) {
    len = 2;
    cp = lead & 0x1F;
  } else if ((lead & 0xF0) == 0xE0) {
    len = 3;
    cp = lead & 0x0F;
  } else if ((lead & 0xF8) == 0xF0) {
    len = 4;
    cp = lead & 0x07;
  } else {
    return 0;  // continuation byte or 0xF8..0xFF lead
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (byte(i + k) & 0x3F);
  }
  // Overlong encodings re-encode a code point with more bytes than needed;
  // accepting them lets one code point take several byte spellings, the
  // classic smuggling vector.
  static constexpr uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinForLen[len]) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;  // unpaired surrogate
  if (cp > 0x10FFFF) return 0;
  return len;
}

}  // namespace

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        *out += "\\\"";
        ++i;
        continue;
      case '\\':
        *out += "\\\\";
        ++i;
        continue;
      case '\b':
        *out += "\\b";
        ++i;
        continue;
      case '\f':
        *out += "\\f";
        ++i;
        continue;
      case '\n':
        *out += "\\n";
        ++i;
        continue;
      case '\r':
        *out += "\\r";
        ++i;
        continue;
      case '\t':
        *out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out->push_back(static_cast<char>(c));
      ++i;
      continue;
    }
    const size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      // Invalid byte: substitute U+FFFD (one per bad byte) rather than
      // emitting the raw byte — the wire would otherwise carry a JSON
      // document that is not valid UTF-8, which strict peers reject whole.
      *out += "\\ufffd";
      ++i;
      continue;
    }
    out->append(s, i, len);
    i += len;
  }
  out->push_back('"');
}

void Json::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        // %.17g round-trips every double; JSON has no NaN/Inf, so those
        // serialize as null (they cannot occur in engine rows anyway).
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
        // Keep the number recognizably non-integral so it parses back as a
        // double ("2" would come back as an int).
        if (out->find_first_of(".eE", out->size() - std::strlen(buf)) ==
            std::string::npos) {
          *out += ".0";
        }
      } else {
        *out += "null";
      }
      break;
    }
    case Kind::kString:
      AppendJsonString(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendJsonString(object_[i].first, out);
        out->push_back(':');
        object_[i].second.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over the wire line. Depth-limited so a
/// maliciously nested line cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    ONESQL_ASSIGN_OR_RETURN(Json doc, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON document");
    }
    return doc;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::ParseError(std::string("expected '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  bool ConsumeWord(const char* word) {
    size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Status::ParseError("JSON nesting exceeds depth limit");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of JSON document");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      ONESQL_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeWord("null")) return Json::Null();
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    return ParseNumber();
  }

  Result<Json> ParseObject(int depth) {
    ONESQL_RETURN_NOT_OK(Expect('{'));
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      ONESQL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      ONESQL_RETURN_NOT_OK(Expect(':'));
      ONESQL_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      ONESQL_RETURN_NOT_OK(Expect('}'));
      return obj;
    }
  }

  Result<Json> ParseArray(int depth) {
    ONESQL_RETURN_NOT_OK(Expect('['));
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      ONESQL_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Add(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      ONESQL_RETURN_NOT_OK(Expect(']'));
      return arr;
    }
  }

  Result<std::string> ParseString() {
    ONESQL_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          ONESQL_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair: combine into one code point. A high surrogate
          // must be followed by a low one (and vice versa) — unpaired
          // surrogates are not encodable as UTF-8 and are rejected.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Status::ParseError("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            ONESQL_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Status::ParseError("invalid low surrogate in \\u escape");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Status::ParseError("unpaired low surrogate in \\u escape");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Status::ParseError(std::string("invalid escape '\\") + esc +
                                    "'");
      }
    }
    return Status::ParseError("unterminated JSON string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Status::ParseError("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::ParseError("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    const size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      return Status::ParseError("leading zero in number at offset " +
                                std::to_string(start));
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Status::ParseError("invalid JSON value at offset " +
                                std::to_string(start));
    }
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json::Int(static_cast<int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::ParseError("malformed number '" + token + "'");
    }
    return Json::Double(d);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace server
}  // namespace onesql
