#ifndef ONESQL_SERVER_JSON_H_
#define ONESQL_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace onesql {
namespace server {

/// A minimal JSON document model for the wire protocol (DESIGN.md §13).
/// Self-contained on purpose: the container bakes in no JSON dependency, and
/// the protocol needs only what RFC 8259 requires — objects, arrays, strings
/// with \uXXXX escapes, numbers, booleans, null.
///
/// Numbers keep int64 fidelity: a literal with no fraction or exponent parses
/// as an integer (BIGINT values and millisecond timestamps round-trip
/// exactly); everything else is a double, serialized with enough digits to
/// round-trip.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = v;
    return j;
  }
  static Json Int(int64_t v) {
    Json j;
    j.kind_ = Kind::kInt;
    j.int_ = v;
    return j;
  }
  static Json Double(double v) {
    Json j;
    j.kind_ = Kind::kDouble;
    j.double_ = v;
    return j;
  }
  static Json Str(std::string v) {
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(v);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const { return int_; }
  /// Numeric reading of either number kind.
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  const std::vector<Json>& items() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Object member lookup (nullptr when absent or not an object).
  const Json* Find(const std::string& key) const;

  /// Builders. Add() returns *this for chaining.
  Json& Add(Json item);                       // arrays
  Json& Set(const std::string& key, Json v);  // objects

  /// Compact single-line rendering (no spaces), valid as one wire line.
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

  /// Parses one complete JSON document; trailing non-whitespace is an error.
  static Result<Json> Parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Appends `s` to `out` as a quoted JSON string, escaping as required
/// (control characters to \uXXXX). Well-formed UTF-8 passes through
/// verbatim; every byte that is not part of a valid sequence — bad lead,
/// truncated/malformed continuation, overlong encoding, surrogate, or
/// beyond U+10FFFF — is replaced with an escaped U+FFFD, so the emitted
/// document is always valid UTF-8 (hostile VARCHAR payloads cannot smuggle
/// raw bytes onto the wire).
void AppendJsonString(const std::string& s, std::string* out);

}  // namespace server
}  // namespace onesql

#endif  // ONESQL_SERVER_JSON_H_
