// The `onesql_serve` binary: the standing-query server on a TCP port.
// Line-delimited JSON in, responses and pushed changelog deltas out — try
// it with nc (README "Serve it"). Runs until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "server/server_core.h"
#include "server/tcp_server.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--durable-dir DIR] [--max-sessions N]\n"
      "          [--max-queries N] [--max-session-queue N] [--shards N]\n"
      "          [--profiling]\n"
      "  --port N              listen port on 127.0.0.1 (default 7687;\n"
      "                        0 picks an ephemeral port)\n"
      "  --durable-dir DIR     restore from DIR, run with a write-ahead\n"
      "                        feed log, enable the checkpoint command\n"
      "  --max-sessions N      session admission bound (default 64)\n"
      "  --max-queries N       live engine queries; shared plans count\n"
      "                        once (default 64)\n"
      "  --max-session-queue N outbound lines buffered per session before\n"
      "                        a slow subscriber is dropped (default 1024)\n"
      "  --shards N            shard count for submitted queries\n"
      "                        (default 1; 0 = hardware concurrency)\n"
      "  --profiling           query-level profiling: the explain\n"
      "                        command's sampled wall-time / kernel-path\n"
      "                        annotations (DESIGN.md §15)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  onesql::server::ServerOptions options;
  int port = 7687;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--durable-dir") {
      options.durable_dir = next();
    } else if (arg == "--max-sessions") {
      options.max_sessions = std::atoi(next());
    } else if (arg == "--max-queries") {
      options.max_queries = std::atoi(next());
    } else if (arg == "--max-session-queue") {
      options.max_session_queue =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--shards") {
      options.default_shards = std::atoi(next());
    } else if (arg == "--profiling") {
      options.profiling = true;
    } else {
      Usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  auto core = onesql::server::ServerCore::Create(options);
  if (!core.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 core.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<onesql::server::ServerCore> shared =
      std::move(core).value();
  auto server = onesql::server::TcpServer::Start(shared, port);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%d: %s\n", port,
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("onesql_serve listening on 127.0.0.1:%d%s\n",
              server.value()->port(),
              options.durable_dir.empty()
                  ? ""
                  : (" (durable: " + options.durable_dir + ")").c_str());
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM, then stop cleanly (joins all threads).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("signal %d: shutting down\n", sig);
  server.value()->Stop();
  return 0;
}
