#ifndef ONESQL_PLAN_OPTIMIZER_H_
#define ONESQL_PLAN_OPTIMIZER_H_

#include <vector>

#include "common/result.h"
#include "plan/logical_plan.h"

namespace onesql {
namespace plan {

/// Rule-based logical optimizer. Applies, in order:
///
/// 1. Filter pushdown: conjuncts of a filter sitting on an inner/cross join
///    are routed to the join side they reference, or merged into the join
///    condition when they span both sides (this turns the paper's Listing 2
///    comma-join + WHERE into a proper join predicate).
/// 2. Equi-key extraction: equality conjuncts between the two join sides
///    become hash keys; the remainder stays as a residual predicate.
/// 3. Watermark purge derivation (the Section 5 lesson that "some operations
///    only work efficiently on watermarked event time attributes"): bounds
///    between event-time columns of the two sides are turned into
///    JoinPurgeSpecs so join state can be released as the watermark
///    advances. A side is only purged when this is provably safe: the side
///    never retracts (append-only pipeline), or retractions provably stop
///    before purge time (the purge column is an event-time grouping key of
///    the side's aggregation, whose groups are final once the watermark
///    passes).
class Optimizer {
 public:
  /// Rewrites the plan in place.
  static Status Optimize(QueryPlan* plan);

  /// Optimizes a plan subtree (exposed for tests).
  static LogicalNodePtr OptimizeNode(LogicalNodePtr node);
};

/// Splits an AND tree into its conjuncts (ownership transferred).
std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr);

/// Rebuilds an AND tree; returns nullptr for an empty list.
BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts);

/// True if every operator between `node` and its sources only ever appends:
/// scans, filters, projections, and windowing TVFs. Aggregations and joins
/// may retract.
bool IsAppendOnlyPipeline(const LogicalNode& node);

}  // namespace plan
}  // namespace onesql

#endif  // ONESQL_PLAN_OPTIMIZER_H_
