#include "plan/logical_plan.h"

namespace onesql {
namespace plan {

const char* WindowKindToString(WindowKind kind) {
  switch (kind) {
    case WindowKind::kTumble: return "Tumble";
    case WindowKind::kHop: return "Hop";
    case WindowKind::kSession: return "Session";
  }
  return "?";
}

std::string ScanNode::ToString(int indent) const {
  return Indent(indent) + "Scan(" + source_ + (unbounded_ ? ", stream" : ", table") +
         ") " + schema_.ToString() + "\n";
}

std::string FilterNode::ToString(int indent) const {
  return Indent(indent) + "Filter(" + predicate_->ToString() + ")\n" +
         input_->ToString(indent + 1);
}

std::string TemporalFilterNode::ToString(int indent) const {
  return Indent(indent) + "TemporalFilter(#" + std::to_string(et_col_) +
         " > CURRENT_TIME - " + horizon_.ToString() + ")\n" +
         input_->ToString(indent + 1);
}

std::string ProjectNode::ToString(int indent) const {
  std::string out = Indent(indent) + "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.field(i).name;
    out += "=";
    out += exprs_[i]->ToString();
  }
  out += ")\n";
  out += input_->ToString(indent + 1);
  return out;
}

std::string WindowNode::ToString(int indent) const {
  std::string out = Indent(indent);
  out += WindowKindToString(window_kind_);
  out += "(timecol=#" + std::to_string(timecol_);
  out += window_kind_ == WindowKind::kSession ? ", gap=" : ", dur=";
  out += dur_.ToString();
  if (window_kind_ == WindowKind::kHop) {
    out += ", hop=" + hop_.ToString();
  }
  if (offset_.millis() != 0) {
    out += ", offset=" + offset_.ToString();
  }
  if (session_key_.has_value()) {
    out += ", key=#" + std::to_string(*session_key_);
  }
  out += ")\n";
  out += input_->ToString(indent + 1);
  return out;
}

std::string AggregateNode::ToString(int indent) const {
  std::string out = Indent(indent) + "Aggregate(keys=[";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i]->ToString();
  }
  out += "], aggs=[";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs_[i].ToString();
  }
  out += "]";
  if (!event_time_key_indexes_.empty()) {
    out += ", event_time_keys=[";
    for (size_t i = 0; i < event_time_key_indexes_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(event_time_key_indexes_[i]);
    }
    out += "]";
  }
  out += ")\n";
  out += input_->ToString(indent + 1);
  return out;
}

std::string JoinPurgeSpec::ToString() const {
  return "purge(#" + std::to_string(et_col) + " + " + slack.ToString() +
         " <= wm)";
}

std::string JoinNode::ToString(int indent) const {
  std::string out = Indent(indent) + "Join(";
  out += JoinTypeToString(join_type_);
  if (condition_) {
    out += ", on=" + condition_->ToString();
  }
  if (!equi_keys_.empty()) {
    out += ", equi=[";
    for (size_t i = 0; i < equi_keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "#" + std::to_string(equi_keys_[i].first) + "=#" +
             std::to_string(equi_keys_[i].second);
    }
    out += "]";
  }
  if (left_purge_.has_value()) out += ", left_" + left_purge_->ToString();
  if (right_purge_.has_value()) out += ", right_" + right_purge_->ToString();
  out += ")\n";
  out += left_->ToString(indent + 1);
  out += right_->ToString(indent + 1);
  return out;
}

std::string QueryPlan::ToString() const {
  std::string out;
  if (emit.has_value()) {
    out += emit->ToString();
    out += "\n";
  }
  if (completeness_column.has_value()) {
    out += "completeness_column=#" + std::to_string(*completeness_column) +
           "\n";
  }
  if (!version_key_columns.empty()) {
    out += "version_key=[";
    for (size_t i = 0; i < version_key_columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += "#" + std::to_string(version_key_columns[i]);
    }
    out += "]\n";
  }
  out += root->ToString(0);
  return out;
}

}  // namespace plan
}  // namespace onesql
