#ifndef ONESQL_PLAN_FINGERPRINT_H_
#define ONESQL_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "plan/logical_plan.h"

namespace onesql {
namespace plan {

/// A canonical identity for a bound, optimized query plan, used by the
/// standing-query server to route subscribers of identical queries onto one
/// shared operator tree (multi-query sharing; see DESIGN.md §13).
///
/// Two plans share a fingerprint exactly when their runtimes are
/// *observationally bit-identical*: same sources, same operator tree, same
/// EMIT materialization controls, same presentation (ORDER BY / LIMIT), and
/// same allowed lateness. The canonicalization is deliberately conservative —
/// it only erases differences that provably cannot change any rendering:
///
///  - Output column *names* (SELECT aliases, table aliases) are excluded:
///    binding resolves every reference to a position, and rows carry no
///    names, so `SELECT price AS p` and `SELECT price AS q` over the same
///    source render identically.
///  - AND-conjunct order inside filter predicates is sorted: a filter passes
///    or drops rows without reordering them, so `WHERE a > 1 AND b < 2` and
///    `WHERE b < 2 AND a > 1` are the same operator.
///
/// Everything else is order-sensitive on purpose. Window widths, hop sizes,
/// session gaps, grouping-key order, aggregate-call order, join shape, and
/// the EMIT clause all feed the hash, because each of them changes either
/// the result rows or their materialization order.
struct PlanFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;
  /// The canonical text the hash was computed over. Kept so fingerprint
  /// equality can fall back to byte comparison — a 128-bit collision must
  /// never silently fuse two different standing queries.
  std::string canonical;

  bool operator==(const PlanFingerprint& o) const {
    return hi == o.hi && lo == o.lo && canonical == o.canonical;
  }
  bool operator!=(const PlanFingerprint& o) const { return !(*this == o); }

  /// 32-hex-digit rendering (the wire protocol's `fingerprint` field).
  std::string ToHex() const;
};

/// Computes the fingerprint of a bound + optimized plan. The plan's
/// `allowed_lateness` must already hold its effective value (Engine::Execute
/// applies the execution option before fingerprinting), since lateness
/// changes the emitted late panes.
PlanFingerprint FingerprintPlan(const QueryPlan& plan);

}  // namespace plan
}  // namespace onesql

#endif  // ONESQL_PLAN_FINGERPRINT_H_
