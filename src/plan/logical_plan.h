#ifndef ONESQL_PLAN_LOGICAL_PLAN_H_
#define ONESQL_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/timestamp.h"
#include "plan/bound_expr.h"
#include "sql/ast.h"

namespace onesql {
namespace plan {

/// Base class for logical plan nodes. Every node knows its output schema
/// (with event-time / window-role metadata) and whether its output relation
/// is unbounded.
class LogicalNode {
 public:
  enum class Kind {
    kScan,
    kFilter,
    kProject,
    kWindow,
    kAggregate,
    kJoin,
    kTemporalFilter,
  };

  LogicalNode(Kind kind, Schema schema, bool unbounded)
      : kind_(kind), schema_(std::move(schema)), unbounded_(unbounded) {}
  virtual ~LogicalNode() = default;

  Kind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }
  bool unbounded() const { return unbounded_; }

  /// Multi-line indented plan rendering (EXPLAIN-style).
  virtual std::string ToString(int indent = 0) const = 0;

 protected:
  std::string Indent(int indent) const { return std::string(indent * 2, ' '); }

  Kind kind_;
  Schema schema_;
  bool unbounded_;
};

using LogicalNodePtr = std::unique_ptr<LogicalNode>;

/// Leaf: reads a relation registered in the catalog.
class ScanNode : public LogicalNode {
 public:
  ScanNode(std::string source, Schema schema, bool unbounded)
      : LogicalNode(Kind::kScan, std::move(schema), unbounded),
        source_(std::move(source)) {}
  const std::string& source() const { return source_; }
  std::string ToString(int indent) const override;

 private:
  std::string source_;
};

/// Row filter; changelog entries whose row fails the predicate are dropped
/// (symmetrically for INSERTs and DELETEs, so TVR semantics are preserved).
class FilterNode : public LogicalNode {
 public:
  FilterNode(LogicalNodePtr input, BoundExprPtr predicate)
      : LogicalNode(Kind::kFilter, input->schema(), input->unbounded()),
        input_(std::move(input)),
        predicate_(std::move(predicate)) {}
  const LogicalNode& input() const { return *input_; }
  LogicalNodePtr& mutable_input() { return input_; }
  const BoundExpr& predicate() const { return *predicate_; }
  BoundExprPtr& mutable_predicate() { return predicate_; }
  std::string ToString(int indent) const override;

 private:
  LogicalNodePtr input_;
  BoundExprPtr predicate_;
};

/// Computes one output column per expression. The output schema records
/// which columns remain watermark-aligned event-time attributes (a verbatim
/// forward of an event-time column keeps the property; any computed
/// expression loses it — the conservative policy described in Appendix B.2).
class ProjectNode : public LogicalNode {
 public:
  ProjectNode(LogicalNodePtr input, std::vector<BoundExprPtr> exprs,
              Schema schema)
      : LogicalNode(Kind::kProject, std::move(schema), input->unbounded()),
        input_(std::move(input)),
        exprs_(std::move(exprs)) {}
  const LogicalNode& input() const { return *input_; }
  LogicalNodePtr& mutable_input() { return input_; }
  const std::vector<BoundExprPtr>& exprs() const { return exprs_; }
  std::string ToString(int indent) const override;

 private:
  LogicalNodePtr input_;
  std::vector<BoundExprPtr> exprs_;
};

/// The paper's Section 8 "time-progressing expressions": keeps the rows with
/// `et_col > CURRENT_TIME - horizon` where CURRENT_TIME is the relation's
/// progressing event-time clock (its watermark). Rows are admitted on
/// arrival and *retracted* once the watermark passes `et_col + horizon`, so
/// the output TVR is the sliding tail of the stream.
class TemporalFilterNode : public LogicalNode {
 public:
  TemporalFilterNode(LogicalNodePtr input, size_t et_col, Interval horizon)
      : LogicalNode(Kind::kTemporalFilter, input->schema(),
                    input->unbounded()),
        input_(std::move(input)),
        et_col_(et_col),
        horizon_(horizon) {}
  const LogicalNode& input() const { return *input_; }
  LogicalNodePtr& mutable_input() { return input_; }
  size_t et_col() const { return et_col_; }
  Interval horizon() const { return horizon_; }
  std::string ToString(int indent) const override;

 private:
  LogicalNodePtr input_;
  size_t et_col_;
  Interval horizon_;
};

enum class WindowKind { kTumble, kHop, kSession };

const char* WindowKindToString(WindowKind kind);

/// A windowing TVF application (Extension 3, and the Section 8 future-work
/// session windows): appends wstart/wend event-time columns. Tumble emits
/// one output row per input row; Hop emits dur/hop rows per input row;
/// Session (dur = the inactivity gap, optionally keyed) emits one row per
/// input row but may retract and re-emit rows as sessions merge or split.
class WindowNode : public LogicalNode {
 public:
  WindowNode(LogicalNodePtr input, WindowKind wkind, size_t timecol,
             Interval dur, Interval hop, Interval offset, Schema schema,
             std::optional<size_t> session_key = std::nullopt)
      : LogicalNode(Kind::kWindow, std::move(schema), input->unbounded()),
        input_(std::move(input)),
        window_kind_(wkind),
        timecol_(timecol),
        dur_(dur),
        hop_(hop),
        offset_(offset),
        session_key_(session_key) {}
  const LogicalNode& input() const { return *input_; }
  LogicalNodePtr& mutable_input() { return input_; }
  WindowKind window_kind() const { return window_kind_; }
  size_t timecol() const { return timecol_; }
  Interval dur() const { return dur_; }
  Interval hop() const { return hop_; }
  Interval offset() const { return offset_; }
  /// Sessionization key column (kSession only); nullopt = global sessions.
  std::optional<size_t> session_key() const { return session_key_; }
  /// Indexes of the appended window columns in the output schema.
  size_t wstart_index() const { return schema_.num_fields() - 2; }
  size_t wend_index() const { return schema_.num_fields() - 1; }
  std::string ToString(int indent) const override;

 private:
  LogicalNodePtr input_;
  WindowKind window_kind_;
  size_t timecol_;
  Interval dur_;
  Interval hop_;
  Interval offset_;
  std::optional<size_t> session_key_;
};

/// Grouped aggregation. Output schema: group key columns first, then one
/// column per aggregate call. `event_time_key_indexes` lists positions (into
/// `keys`) of watermark-aligned event-time grouping keys; per Extension 2
/// the group is complete once the watermark passes the key value, after
/// which state is purged and late inputs are dropped.
class AggregateNode : public LogicalNode {
 public:
  AggregateNode(LogicalNodePtr input, std::vector<BoundExprPtr> keys,
                std::vector<AggregateCall> aggs,
                std::vector<size_t> event_time_key_indexes, Schema schema)
      : LogicalNode(Kind::kAggregate, std::move(schema), input->unbounded()),
        input_(std::move(input)),
        keys_(std::move(keys)),
        aggs_(std::move(aggs)),
        event_time_key_indexes_(std::move(event_time_key_indexes)) {}
  const LogicalNode& input() const { return *input_; }
  LogicalNodePtr& mutable_input() { return input_; }
  const std::vector<BoundExprPtr>& keys() const { return keys_; }
  const std::vector<AggregateCall>& aggs() const { return aggs_; }
  const std::vector<size_t>& event_time_key_indexes() const {
    return event_time_key_indexes_;
  }
  std::string ToString(int indent) const override;

 private:
  LogicalNodePtr input_;
  std::vector<BoundExprPtr> keys_;
  std::vector<AggregateCall> aggs_;
  std::vector<size_t> event_time_key_indexes_;
};

/// Watermark-driven state cleanup directive for one side of a join,
/// derived by the optimizer from event-time-vs-event-time predicates:
/// a row whose `et_col` value v satisfies v + slack <= watermark can never
/// match any future row of the other side and is purged.
struct JoinPurgeSpec {
  size_t et_col = 0;       // column index within that side's schema
  Interval slack{0};

  std::string ToString() const;
};

/// Binary join. `condition` (nullable for a pure cross join) is evaluated
/// over the concatenated [left..., right...] row. `equi_keys` is an optimizer
/// extraction of equality conjuncts for hash-based execution; the remaining
/// condition stays as a residual predicate.
class JoinNode : public LogicalNode {
 public:
  JoinNode(sql::JoinType join_type, LogicalNodePtr left, LogicalNodePtr right,
           BoundExprPtr condition, Schema schema)
      : LogicalNode(Kind::kJoin, std::move(schema),
                    left->unbounded() || right->unbounded()),
        join_type_(join_type),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)) {}
  sql::JoinType join_type() const { return join_type_; }
  const LogicalNode& left() const { return *left_; }
  const LogicalNode& right() const { return *right_; }
  LogicalNodePtr& mutable_left() { return left_; }
  LogicalNodePtr& mutable_right() { return right_; }
  const BoundExpr* condition() const { return condition_.get(); }
  BoundExprPtr& mutable_condition() { return condition_; }

  /// (left column, right column) pairs compared with `=`.
  const std::vector<std::pair<size_t, size_t>>& equi_keys() const {
    return equi_keys_;
  }
  std::vector<std::pair<size_t, size_t>>* mutable_equi_keys() {
    return &equi_keys_;
  }
  const std::optional<JoinPurgeSpec>& left_purge() const { return left_purge_; }
  const std::optional<JoinPurgeSpec>& right_purge() const {
    return right_purge_;
  }
  void set_left_purge(JoinPurgeSpec spec) { left_purge_ = spec; }
  void set_right_purge(JoinPurgeSpec spec) { right_purge_ = spec; }
  /// Removes purge directives (ablation studies).
  void clear_purges() {
    left_purge_.reset();
    right_purge_.reset();
  }

  std::string ToString(int indent) const override;

 private:
  sql::JoinType join_type_;
  LogicalNodePtr left_;
  LogicalNodePtr right_;
  BoundExprPtr condition_;
  std::vector<std::pair<size_t, size_t>> equi_keys_;
  std::optional<JoinPurgeSpec> left_purge_;
  std::optional<JoinPurgeSpec> right_purge_;
};

/// A fully bound query: the plan tree plus presentation directives
/// (ORDER BY / LIMIT apply to snapshot rendering) and the materialization
/// controls from the EMIT clause (Extensions 4-7).
struct QueryPlan {
  LogicalNodePtr root;
  Schema output_schema;  // == root->schema(), for convenience

  std::optional<sql::EmitClause> emit;
  std::vector<std::pair<BoundExprPtr, bool>> order_by;  // (expr, descending)
  std::optional<int64_t> limit;

  /// Output column whose value, once below the watermark, marks the row's
  /// input as complete (drives EMIT AFTER WATERMARK). Prefers a window-end
  /// column; set only when the query groups by an event-time key.
  std::optional<size_t> completeness_column;

  /// Output columns identifying "the same event-time grouping" for `ver`
  /// sequence numbers (Extension 4) and AFTER DELAY coalescing. Empty means
  /// key on the whole row.
  std::vector<size_t> version_key_columns;

  /// Extension 2 notes that "a configurable amount of allowed lateness is
  /// often needed": groupings stay correctable (state retained, late inputs
  /// accepted and emitted as corrections) until the watermark passes the
  /// event-time key by this much. Zero reproduces the paper's strict
  /// semantics.
  Interval allowed_lateness{0};

  std::string ToString() const;
};

}  // namespace plan
}  // namespace onesql

#endif  // ONESQL_PLAN_LOGICAL_PLAN_H_
