#ifndef ONESQL_PLAN_BINDER_H_
#define ONESQL_PLAN_BINDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/catalog.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace onesql {
namespace plan {

/// Resolves names, checks types, and lowers a parsed SELECT statement to a
/// logical plan. Responsibilities beyond classic binding:
///
/// - Event-time attribute tracking (Section 5 / Appendix B.2): a column
///   keeps its watermark-aligned event-time property only when forwarded
///   verbatim; computed expressions degrade to plain TIMESTAMP.
/// - Extension 2 validation: a GROUP BY over an unbounded input must include
///   at least one event-time grouping key.
/// - Window-column functional dependency: grouping by a window's wend makes
///   its wstart available (and vice versa), as in the paper's Listing 2.
/// - EMIT clause validation (top-level only) and derivation of the
///   completeness column / version-key columns used by materialization.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a top-level statement into an executable QueryPlan.
  Result<QueryPlan> Bind(const sql::SelectStmt& stmt);

 private:
  /// One named relation visible in a scope, with its column offset within
  /// the concatenated input row.
  struct ScopeRange {
    std::string name;  // alias or table name; may be empty
    Schema schema;
    size_t offset = 0;
  };

  struct Scope {
    std::vector<ScopeRange> ranges;

    size_t total_columns() const;
    /// Concatenated schema across ranges.
    Schema Concat() const;
    /// Resolves a (possibly unqualified) column; ambiguity is an error.
    Result<std::pair<size_t, Field>> Resolve(const std::string& qualifier,
                                             const std::string& name) const;
  };

  struct BoundTable {
    LogicalNodePtr node;
    std::vector<ScopeRange> ranges;
  };

  /// Per-output-column bookkeeping used to derive QueryPlan metadata.
  struct BoundSelect {
    LogicalNodePtr node;
    /// For each output column: index of the aggregate group key it forwards
    /// verbatim, or -1.
    std::vector<int64_t> group_key_origin;
    bool aggregated = false;
  };

  Result<BoundSelect> BindSelect(const sql::SelectStmt& stmt, bool top_level);
  Result<BoundTable> BindTableRef(const sql::TableRef& ref);
  Result<BoundTable> BindTvf(const sql::TvfRef& tvf);

  // Scalar expression binding over a scope.
  Result<BoundExprPtr> BindScalar(const sql::Expr& expr, const Scope& scope);
  // Aggregate-context binding: rewrites group-key matches and aggregate
  // calls into references over the Aggregate node's output.
  Result<BoundExprPtr> BindAggregateContext(
      const sql::Expr& expr, const Scope& input_scope,
      const std::vector<BoundExprPtr>& keys,
      const std::vector<Field>& key_fields, std::vector<AggregateCall>* aggs);

  // Shared type-checked operator construction.
  Result<BoundExprPtr> MakeUnary(sql::UnaryOp op, BoundExprPtr operand);
  Result<BoundExprPtr> MakeBinary(sql::BinaryOp op, BoundExprPtr left,
                                  BoundExprPtr right);
  Result<BoundExprPtr> MakeCast(BoundExprPtr operand, DataType target);
  Result<BoundExprPtr> MakeScalarFunction(const std::string& name,
                                          std::vector<BoundExprPtr> args);
  Result<AggregateCall> MakeAggregateCall(const sql::FunctionCallExpr& call,
                                          const Scope& scope);

  const Catalog* catalog_;
};

/// True if `name` is one of the supported aggregate functions.
bool IsAggregateFunctionName(const std::string& name);

/// True if the AST expression contains an aggregate function call.
bool ContainsAggregate(const sql::Expr& expr);

}  // namespace plan
}  // namespace onesql

#endif  // ONESQL_PLAN_BINDER_H_
