#include "plan/optimizer.h"

#include <limits>
#include <map>

namespace onesql {
namespace plan {

namespace {

constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min();
constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max();

void SplitConjunctsInto(BoundExprPtr expr, std::vector<BoundExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == BoundExpr::Kind::kOp && expr->op == ScalarOp::kAnd) {
    SplitConjunctsInto(std::move(expr->children[0]), out);
    SplitConjunctsInto(std::move(expr->children[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

}  // namespace

std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr) {
  std::vector<BoundExprPtr> out;
  SplitConjunctsInto(std::move(expr), &out);
  return out;
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr acc;
  for (auto& c : conjuncts) {
    if (acc == nullptr) {
      acc = std::move(c);
    } else {
      std::vector<BoundExprPtr> children;
      children.push_back(std::move(acc));
      children.push_back(std::move(c));
      acc = BoundExpr::Op(ScalarOp::kAnd, DataType::kBoolean,
                          std::move(children));
    }
  }
  return acc;
}

bool IsAppendOnlyPipeline(const LogicalNode& node) {
  switch (node.kind()) {
    case LogicalNode::Kind::kScan:
      return true;
    case LogicalNode::Kind::kFilter:
      return IsAppendOnlyPipeline(
          static_cast<const FilterNode&>(node).input());
    case LogicalNode::Kind::kProject:
      return IsAppendOnlyPipeline(
          static_cast<const ProjectNode&>(node).input());
    case LogicalNode::Kind::kWindow: {
      const auto& window = static_cast<const WindowNode&>(node);
      // Session windows retract rows when sessions merge or split.
      if (window.window_kind() == WindowKind::kSession) return false;
      return IsAppendOnlyPipeline(window.input());
    }
    case LogicalNode::Kind::kAggregate:
    case LogicalNode::Kind::kJoin:
    case LogicalNode::Kind::kTemporalFilter:  // retracts expiring rows
      return false;
  }
  return false;
}

namespace {

// True if `col` of `node`'s output, traced through filters and verbatim
// projections, is an event-time grouping key of an Aggregate node, i.e.
// its groups are final (no further retractions) once the watermark passes
// the column value.
bool TracesToEventTimeAggregateKey(const LogicalNode& node, size_t col) {
  switch (node.kind()) {
    case LogicalNode::Kind::kFilter:
      return TracesToEventTimeAggregateKey(
          static_cast<const FilterNode&>(node).input(), col);
    case LogicalNode::Kind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      const BoundExpr& e = *project.exprs()[col];
      if (e.kind != BoundExpr::Kind::kInputRef) return false;
      return TracesToEventTimeAggregateKey(project.input(), e.input_index);
    }
    case LogicalNode::Kind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      if (col >= agg.keys().size()) return false;
      for (size_t i : agg.event_time_key_indexes()) {
        if (i == col) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool CanPurgeSide(const LogicalNode& side, size_t col, Interval slack) {
  if (!side.unbounded()) return false;  // bounded inputs need no purging
  if (IsAppendOnlyPipeline(side)) return true;
  if (slack.millis() < 0) return false;
  return TracesToEventTimeAggregateKey(side, col);
}

// An event-time "term": input[col] + shift, extracted from a predicate
// operand.
struct EtTerm {
  size_t col = 0;
  int64_t shift_ms = 0;
};

std::optional<EtTerm> ParseEtTerm(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kInputRef) {
    if (e.type != DataType::kTimestamp) return std::nullopt;
    return EtTerm{e.input_index, 0};
  }
  if (e.kind == BoundExpr::Kind::kOp &&
      (e.op == ScalarOp::kAdd || e.op == ScalarOp::kSub) &&
      e.children.size() == 2) {
    const BoundExpr& a = *e.children[0];
    const BoundExpr& b = *e.children[1];
    if (a.kind == BoundExpr::Kind::kInputRef &&
        a.type == DataType::kTimestamp &&
        b.kind == BoundExpr::Kind::kLiteral &&
        b.type == DataType::kInterval) {
      const int64_t ms = b.literal.AsInterval().millis();
      return EtTerm{a.input_index, e.op == ScalarOp::kAdd ? ms : -ms};
    }
    // interval + timestamp
    if (e.op == ScalarOp::kAdd && b.kind == BoundExpr::Kind::kInputRef &&
        b.type == DataType::kTimestamp &&
        a.kind == BoundExpr::Kind::kLiteral &&
        a.type == DataType::kInterval) {
      return EtTerm{b.input_index, a.literal.AsInterval().millis()};
    }
  }
  return std::nullopt;
}

// Bounds on (left_et - right_et) per (left column, right column) pair.
struct EtBounds {
  int64_t lo = kNegInf;
  int64_t hi = kPosInf;
};

// Processes one comparison conjunct, tightening bounds when it relates an
// event-time column of the left side to one of the right side.
void AccumulateEtBound(const BoundExpr& conjunct, const Schema& left_schema,
                       size_t nleft,
                       std::map<std::pair<size_t, size_t>, EtBounds>* bounds,
                       const Schema& right_schema) {
  if (conjunct.kind != BoundExpr::Kind::kOp) return;
  ScalarOp op = conjunct.op;
  if (op != ScalarOp::kLt && op != ScalarOp::kLe && op != ScalarOp::kGt &&
      op != ScalarOp::kGe && op != ScalarOp::kEq) {
    return;
  }
  auto t1 = ParseEtTerm(*conjunct.children[0]);
  auto t2 = ParseEtTerm(*conjunct.children[1]);
  if (!t1.has_value() || !t2.has_value()) return;

  // Orient so that t1 is the left-side column.
  bool t1_left = t1->col < nleft;
  bool t2_left = t2->col < nleft;
  if (t1_left == t2_left) return;  // same side
  if (!t1_left) {
    std::swap(t1, t2);
    // Mirror the comparison.
    switch (op) {
      case ScalarOp::kLt: op = ScalarOp::kGt; break;
      case ScalarOp::kLe: op = ScalarOp::kGe; break;
      case ScalarOp::kGt: op = ScalarOp::kLt; break;
      case ScalarOp::kGe: op = ScalarOp::kLe; break;
      default: break;
    }
  }
  const size_t lcol = t1->col;
  const size_t rcol = t2->col - nleft;
  if (!left_schema.field(lcol).is_event_time) return;
  if (!right_schema.field(rcol).is_event_time) return;

  // L + a OP R + b  =>  L - R OP (b - a).
  const int64_t c = t2->shift_ms - t1->shift_ms;
  EtBounds& eb = (*bounds)[{lcol, rcol}];
  switch (op) {
    case ScalarOp::kLt:
    case ScalarOp::kLe:
      eb.hi = std::min(eb.hi, c);
      break;
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      eb.lo = std::max(eb.lo, c);
      break;
    case ScalarOp::kEq:
      eb.hi = std::min(eb.hi, c);
      eb.lo = std::max(eb.lo, c);
      break;
    default:
      break;
  }
}

void DerivePurgeSpecs(JoinNode* join) {
  if (join->join_type() == sql::JoinType::kLeft) return;
  const Schema& left_schema = join->left().schema();
  const Schema& right_schema = join->right().schema();
  const size_t nleft = left_schema.num_fields();

  std::map<std::pair<size_t, size_t>, EtBounds> bounds;
  if (join->condition() != nullptr) {
    // Inspect conjuncts without consuming them.
    std::vector<const BoundExpr*> stack = {join->condition()};
    while (!stack.empty()) {
      const BoundExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == BoundExpr::Kind::kOp && e->op == ScalarOp::kAnd) {
        stack.push_back(e->children[0].get());
        stack.push_back(e->children[1].get());
        continue;
      }
      AccumulateEtBound(*e, left_schema, nleft, &bounds, right_schema);
    }
  }
  // Equi keys over event-time columns give exact bounds.
  for (const auto& [l, r] : join->equi_keys()) {
    if (left_schema.field(l).is_event_time &&
        right_schema.field(r).is_event_time &&
        left_schema.field(l).type == DataType::kTimestamp) {
      EtBounds& eb = bounds[{l, r}];
      eb.lo = std::max(eb.lo, int64_t{0});
      eb.hi = std::min(eb.hi, int64_t{0});
    }
  }

  for (const auto& [cols, eb] : bounds) {
    if (!join->left_purge().has_value() && eb.lo != kNegInf) {
      const Interval slack(-eb.lo);
      if (CanPurgeSide(join->left(), cols.first, slack)) {
        join->set_left_purge(JoinPurgeSpec{cols.first, slack});
      }
    }
    if (!join->right_purge().has_value() && eb.hi != kPosInf) {
      const Interval slack(eb.hi);
      if (CanPurgeSide(join->right(), cols.second, slack)) {
        join->set_right_purge(JoinPurgeSpec{cols.second, slack});
      }
    }
  }
}

void ExtractEquiKeys(JoinNode* join) {
  if (join->condition() == nullptr) return;
  if (join->join_type() == sql::JoinType::kLeft) return;
  const size_t nleft = join->left().schema().num_fields();

  std::vector<BoundExprPtr> conjuncts =
      SplitConjuncts(std::move(join->mutable_condition()));
  std::vector<BoundExprPtr> residual;
  for (auto& c : conjuncts) {
    bool extracted = false;
    if (c->kind == BoundExpr::Kind::kOp && c->op == ScalarOp::kEq &&
        c->children.size() == 2 &&
        c->children[0]->kind == BoundExpr::Kind::kInputRef &&
        c->children[1]->kind == BoundExpr::Kind::kInputRef) {
      size_t a = c->children[0]->input_index;
      size_t b = c->children[1]->input_index;
      if (a >= nleft && b < nleft) std::swap(a, b);
      if (a < nleft && b >= nleft) {
        join->mutable_equi_keys()->emplace_back(a, b - nleft);
        extracted = true;
      }
    }
    if (!extracted) residual.push_back(std::move(c));
  }
  join->mutable_condition() = CombineConjuncts(std::move(residual));
}

// Pushes the conjuncts of `predicate` into the appropriate side of `join`,
// merging cross-side conjuncts into the join condition. Only valid for
// inner/cross joins.
void PushFilterIntoJoin(JoinNode* join, BoundExprPtr predicate) {
  const size_t nleft = join->left().schema().num_fields();
  std::vector<BoundExprPtr> conjuncts = SplitConjuncts(std::move(predicate));
  std::vector<BoundExprPtr> left_side, right_side, spanning;
  for (auto& c : conjuncts) {
    std::vector<size_t> refs;
    CollectInputRefs(*c, &refs);
    const bool any_left = !refs.empty() && refs.front() < nleft;
    const bool any_right = !refs.empty() && refs.back() >= nleft;
    if (any_left && !any_right) {
      left_side.push_back(std::move(c));
    } else if (any_right && !any_left) {
      ShiftInputRefs(c.get(), -static_cast<int64_t>(nleft));
      right_side.push_back(std::move(c));
    } else {
      spanning.push_back(std::move(c));
    }
  }
  if (!left_side.empty()) {
    join->mutable_left() = std::make_unique<FilterNode>(
        std::move(join->mutable_left()),
        CombineConjuncts(std::move(left_side)));
  }
  if (!right_side.empty()) {
    join->mutable_right() = std::make_unique<FilterNode>(
        std::move(join->mutable_right()),
        CombineConjuncts(std::move(right_side)));
  }
  if (!spanning.empty()) {
    if (join->condition() != nullptr) {
      spanning.push_back(std::move(join->mutable_condition()));
    }
    join->mutable_condition() = CombineConjuncts(std::move(spanning));
  }
}

}  // namespace

LogicalNodePtr Optimizer::OptimizeNode(LogicalNodePtr node) {
  switch (node->kind()) {
    case LogicalNode::Kind::kScan:
      return node;
    case LogicalNode::Kind::kFilter: {
      auto* filter = static_cast<FilterNode*>(node.get());
      filter->mutable_input() = OptimizeNode(std::move(filter->mutable_input()));
      LogicalNode& input = *filter->mutable_input();
      if (input.kind() == LogicalNode::Kind::kJoin) {
        auto* join = static_cast<JoinNode*>(&input);
        if (join->join_type() != sql::JoinType::kLeft) {
          PushFilterIntoJoin(join, std::move(filter->mutable_predicate()));
          LogicalNodePtr join_node = std::move(filter->mutable_input());
          // Re-run join-local rules now that the condition changed.
          auto* j = static_cast<JoinNode*>(join_node.get());
          j->mutable_left() = OptimizeNode(std::move(j->mutable_left()));
          j->mutable_right() = OptimizeNode(std::move(j->mutable_right()));
          ExtractEquiKeys(j);
          DerivePurgeSpecs(j);
          return join_node;
        }
      }
      // Merge adjacent filters.
      if (input.kind() == LogicalNode::Kind::kFilter) {
        auto* inner = static_cast<FilterNode*>(&input);
        std::vector<BoundExprPtr> conjuncts;
        conjuncts.push_back(std::move(filter->mutable_predicate()));
        conjuncts.push_back(std::move(inner->mutable_predicate()));
        auto merged = std::make_unique<FilterNode>(
            std::move(inner->mutable_input()),
            CombineConjuncts(std::move(conjuncts)));
        return OptimizeNode(std::move(merged));
      }
      return node;
    }
    case LogicalNode::Kind::kProject: {
      auto* project = static_cast<ProjectNode*>(node.get());
      project->mutable_input() =
          OptimizeNode(std::move(project->mutable_input()));
      return node;
    }
    case LogicalNode::Kind::kWindow: {
      auto* window = static_cast<WindowNode*>(node.get());
      window->mutable_input() =
          OptimizeNode(std::move(window->mutable_input()));
      return node;
    }
    case LogicalNode::Kind::kAggregate: {
      auto* agg = static_cast<AggregateNode*>(node.get());
      agg->mutable_input() = OptimizeNode(std::move(agg->mutable_input()));
      return node;
    }
    case LogicalNode::Kind::kTemporalFilter: {
      auto* tf = static_cast<TemporalFilterNode*>(node.get());
      tf->mutable_input() = OptimizeNode(std::move(tf->mutable_input()));
      return node;
    }
    case LogicalNode::Kind::kJoin: {
      auto* join = static_cast<JoinNode*>(node.get());
      join->mutable_left() = OptimizeNode(std::move(join->mutable_left()));
      join->mutable_right() = OptimizeNode(std::move(join->mutable_right()));
      ExtractEquiKeys(join);
      DerivePurgeSpecs(join);
      return node;
    }
  }
  return node;
}

Status Optimizer::Optimize(QueryPlan* plan) {
  if (plan == nullptr || plan->root == nullptr) {
    return Status::InvalidArgument("Optimize requires a bound plan");
  }
  plan->root = OptimizeNode(std::move(plan->root));
  return Status::OK();
}

}  // namespace plan
}  // namespace onesql
