#ifndef ONESQL_PLAN_CATALOG_H_
#define ONESQL_PLAN_CATALOG_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/schema.h"

namespace onesql {
namespace plan {

/// A registered relation. Per the paper there is no semantic distinction
/// between tables and streams — both are time-varying relations — but
/// *boundedness* matters for validation (Extension 2 requires an event-time
/// grouping key for unbounded GROUP BY inputs) and for operator selection.
struct TableDef {
  std::string name;
  Schema schema;
  /// True for streams (unbounded TVRs), false for static tables.
  bool unbounded = true;
};

/// Name -> relation registry consulted by the binder.
class Catalog {
 public:
  /// Registers a relation; fails on duplicate (case-insensitive) names.
  Status Register(TableDef def);

  /// Case-insensitive lookup.
  Result<const TableDef*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered relations, keyed by lowercased name (deterministic
  /// order — used by the checkpoint writer to serialize the catalog).
  const std::map<std::string, TableDef>& tables() const { return tables_; }

 private:
  std::map<std::string, TableDef> tables_;  // keyed by lowercased name
};

}  // namespace plan
}  // namespace onesql

#endif  // ONESQL_PLAN_CATALOG_H_
