#include "plan/binder.h"

#include <algorithm>

#include "plan/optimizer.h"

namespace onesql {
namespace plan {

namespace {

bool ContainsCurrentTime(const sql::Expr& expr) {
  switch (expr.kind()) {
    case sql::Expr::Kind::kCurrentTime:
      return true;
    case sql::Expr::Kind::kUnary:
      return ContainsCurrentTime(
          static_cast<const sql::UnaryExpr&>(expr).operand());
    case sql::Expr::Kind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      return ContainsCurrentTime(bin.left()) ||
             ContainsCurrentTime(bin.right());
    }
    case sql::Expr::Kind::kCast:
      return ContainsCurrentTime(
          static_cast<const sql::CastExpr&>(expr).operand());
    case sql::Expr::Kind::kIsNull:
      return ContainsCurrentTime(
          static_cast<const sql::IsNullExpr&>(expr).operand());
    case sql::Expr::Kind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& w : c.whens()) {
        if (ContainsCurrentTime(*w.condition) ||
            ContainsCurrentTime(*w.result)) {
          return true;
        }
      }
      return c.else_result() != nullptr &&
             ContainsCurrentTime(*c.else_result());
    }
    case sql::Expr::Kind::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      for (const auto& arg : call.args()) {
        if (ContainsCurrentTime(*arg)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

void CollectAstConjuncts(const sql::Expr& expr,
                         std::vector<const sql::Expr*>* out) {
  if (expr.kind() == sql::Expr::Kind::kBinary) {
    const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
    if (bin.op() == sql::BinaryOp::kAnd) {
      CollectAstConjuncts(bin.left(), out);
      CollectAstConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(&expr);
}

/// Matches "CURRENT_TIME", "CURRENT_TIME - INTERVAL ...", or
/// "CURRENT_TIME + INTERVAL ..." and returns the subtracted horizon.
std::optional<Interval> ParseCurrentTimeSide(const sql::Expr& expr) {
  if (expr.kind() == sql::Expr::Kind::kCurrentTime) return Interval(0);
  if (expr.kind() != sql::Expr::Kind::kBinary) return std::nullopt;
  const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
  if (bin.op() != sql::BinaryOp::kSub && bin.op() != sql::BinaryOp::kAdd) {
    return std::nullopt;
  }
  if (bin.left().kind() != sql::Expr::Kind::kCurrentTime ||
      bin.right().kind() != sql::Expr::Kind::kLiteral) {
    return std::nullopt;
  }
  const Value& v = static_cast<const sql::LiteralExpr&>(bin.right()).value();
  if (v.type() != DataType::kInterval) return std::nullopt;
  return bin.op() == sql::BinaryOp::kSub ? v.AsInterval() : -v.AsInterval();
}

bool IsNumericOrNull(DataType t) {
  return t == DataType::kBigint || t == DataType::kDouble ||
         t == DataType::kNull;
}

DataType CommonNumeric(DataType a, DataType b) {
  if (a == DataType::kDouble || b == DataType::kDouble) {
    return DataType::kDouble;
  }
  if (a == DataType::kBigint || b == DataType::kBigint) {
    return DataType::kBigint;
  }
  return DataType::kNull;
}

bool IsComparable(DataType a, DataType b) {
  if (a == DataType::kNull || b == DataType::kNull) return true;
  if (IsNumericOrNull(a) && IsNumericOrNull(b)) return true;
  return a == b;
}

}  // namespace

bool IsAggregateFunctionName(const std::string& name) {
  return IdentEquals(name, "COUNT") || IdentEquals(name, "SUM") ||
         IdentEquals(name, "MIN") || IdentEquals(name, "MAX") ||
         IdentEquals(name, "AVG");
}

bool ContainsAggregate(const sql::Expr& expr) {
  switch (expr.kind()) {
    case sql::Expr::Kind::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      if (IsAggregateFunctionName(call.name())) return true;
      for (const auto& arg : call.args()) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case sql::Expr::Kind::kUnary:
      return ContainsAggregate(
          static_cast<const sql::UnaryExpr&>(expr).operand());
    case sql::Expr::Kind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      return ContainsAggregate(bin.left()) || ContainsAggregate(bin.right());
    }
    case sql::Expr::Kind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& w : c.whens()) {
        if (ContainsAggregate(*w.condition) || ContainsAggregate(*w.result)) {
          return true;
        }
      }
      return c.else_result() != nullptr && ContainsAggregate(*c.else_result());
    }
    case sql::Expr::Kind::kCast:
      return ContainsAggregate(
          static_cast<const sql::CastExpr&>(expr).operand());
    case sql::Expr::Kind::kIsNull:
      return ContainsAggregate(
          static_cast<const sql::IsNullExpr&>(expr).operand());
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

size_t Binder::Scope::total_columns() const {
  size_t n = 0;
  for (const auto& r : ranges) n += r.schema.num_fields();
  return n;
}

Schema Binder::Scope::Concat() const {
  Schema out;
  for (const auto& r : ranges) {
    for (const Field& f : r.schema.fields()) out.AddField(f);
  }
  return out;
}

Result<std::pair<size_t, Field>> Binder::Scope::Resolve(
    const std::string& qualifier, const std::string& name) const {
  if (!qualifier.empty()) {
    for (const auto& r : ranges) {
      if (!IdentEquals(r.name, qualifier)) continue;
      auto idx = r.schema.FindField(name);
      if (!idx.has_value()) {
        return Status::BindError("column '" + name + "' not found in '" +
                                 qualifier + "'");
      }
      return std::make_pair(r.offset + *idx, r.schema.field(*idx));
    }
    return Status::BindError("unknown table alias '" + qualifier + "'");
  }
  std::optional<std::pair<size_t, Field>> found;
  for (const auto& r : ranges) {
    auto idx = r.schema.FindField(name);
    if (!idx.has_value()) continue;
    if (found.has_value()) {
      return Status::BindError("column reference '" + name +
                               "' is ambiguous");
    }
    found = std::make_pair(r.offset + *idx, r.schema.field(*idx));
  }
  if (!found.has_value()) {
    return Status::BindError("column '" + name + "' not found");
  }
  return *found;
}

// ---------------------------------------------------------------------------
// Type-checked operator construction
// ---------------------------------------------------------------------------

Result<BoundExprPtr> Binder::MakeUnary(sql::UnaryOp op, BoundExprPtr operand) {
  const DataType t = operand->type;
  std::vector<BoundExprPtr> children;
  children.push_back(std::move(operand));
  switch (op) {
    case sql::UnaryOp::kNot:
      if (t != DataType::kBoolean && t != DataType::kNull) {
        return Status::BindError("NOT requires a BOOLEAN operand, got " +
                                 std::string(DataTypeToString(t)));
      }
      return BoundExpr::Op(ScalarOp::kNot, DataType::kBoolean,
                           std::move(children));
    case sql::UnaryOp::kNeg:
      if (t == DataType::kInterval) {
        return BoundExpr::Op(ScalarOp::kNeg, DataType::kInterval,
                             std::move(children));
      }
      if (!IsNumericOrNull(t)) {
        return Status::BindError("unary '-' requires a numeric operand");
      }
      return BoundExpr::Op(ScalarOp::kNeg, t, std::move(children));
  }
  return Status::Internal("unreachable unary op");
}

Result<BoundExprPtr> Binder::MakeBinary(sql::BinaryOp op, BoundExprPtr left,
                                        BoundExprPtr right) {
  const DataType lt = left->type;
  const DataType rt = right->type;
  auto children = [&]() {
    std::vector<BoundExprPtr> v;
    v.push_back(std::move(left));
    v.push_back(std::move(right));
    return v;
  };
  auto type_error = [&](const char* what) {
    return Status::BindError(std::string("cannot apply '") + what +
                             "' to types " + DataTypeToString(lt) + " and " +
                             DataTypeToString(rt));
  };

  switch (op) {
    case sql::BinaryOp::kAdd:
      if (IsNumericOrNull(lt) && IsNumericOrNull(rt)) {
        return BoundExpr::Op(ScalarOp::kAdd, CommonNumeric(lt, rt),
                             children());
      }
      if ((lt == DataType::kTimestamp && rt == DataType::kInterval) ||
          (lt == DataType::kInterval && rt == DataType::kTimestamp)) {
        return BoundExpr::Op(ScalarOp::kAdd, DataType::kTimestamp, children());
      }
      if (lt == DataType::kInterval && rt == DataType::kInterval) {
        return BoundExpr::Op(ScalarOp::kAdd, DataType::kInterval, children());
      }
      return type_error("+");
    case sql::BinaryOp::kSub:
      if (IsNumericOrNull(lt) && IsNumericOrNull(rt)) {
        return BoundExpr::Op(ScalarOp::kSub, CommonNumeric(lt, rt),
                             children());
      }
      if (lt == DataType::kTimestamp && rt == DataType::kInterval) {
        return BoundExpr::Op(ScalarOp::kSub, DataType::kTimestamp, children());
      }
      if (lt == DataType::kTimestamp && rt == DataType::kTimestamp) {
        return BoundExpr::Op(ScalarOp::kSub, DataType::kInterval, children());
      }
      if (lt == DataType::kInterval && rt == DataType::kInterval) {
        return BoundExpr::Op(ScalarOp::kSub, DataType::kInterval, children());
      }
      return type_error("-");
    case sql::BinaryOp::kMul:
      if (IsNumericOrNull(lt) && IsNumericOrNull(rt)) {
        return BoundExpr::Op(ScalarOp::kMul, CommonNumeric(lt, rt),
                             children());
      }
      if ((lt == DataType::kInterval && rt == DataType::kBigint) ||
          (lt == DataType::kBigint && rt == DataType::kInterval)) {
        return BoundExpr::Op(ScalarOp::kMul, DataType::kInterval, children());
      }
      return type_error("*");
    case sql::BinaryOp::kDiv:
      if (IsNumericOrNull(lt) && IsNumericOrNull(rt)) {
        return BoundExpr::Op(ScalarOp::kDiv, CommonNumeric(lt, rt),
                             children());
      }
      if (lt == DataType::kInterval && rt == DataType::kBigint) {
        return BoundExpr::Op(ScalarOp::kDiv, DataType::kInterval, children());
      }
      return type_error("/");
    case sql::BinaryOp::kMod:
      if ((lt == DataType::kBigint || lt == DataType::kNull) &&
          (rt == DataType::kBigint || rt == DataType::kNull)) {
        return BoundExpr::Op(ScalarOp::kMod, DataType::kBigint, children());
      }
      return type_error("%");
    case sql::BinaryOp::kEq:
    case sql::BinaryOp::kNeq:
    case sql::BinaryOp::kLt:
    case sql::BinaryOp::kLe:
    case sql::BinaryOp::kGt:
    case sql::BinaryOp::kGe: {
      if (!IsComparable(lt, rt)) return type_error("comparison");
      ScalarOp sop;
      switch (op) {
        case sql::BinaryOp::kEq: sop = ScalarOp::kEq; break;
        case sql::BinaryOp::kNeq: sop = ScalarOp::kNeq; break;
        case sql::BinaryOp::kLt: sop = ScalarOp::kLt; break;
        case sql::BinaryOp::kLe: sop = ScalarOp::kLe; break;
        case sql::BinaryOp::kGt: sop = ScalarOp::kGt; break;
        default: sop = ScalarOp::kGe; break;
      }
      return BoundExpr::Op(sop, DataType::kBoolean, children());
    }
    case sql::BinaryOp::kAnd:
    case sql::BinaryOp::kOr: {
      auto boolish = [](DataType t) {
        return t == DataType::kBoolean || t == DataType::kNull;
      };
      if (!boolish(lt) || !boolish(rt)) {
        return type_error(op == sql::BinaryOp::kAnd ? "AND" : "OR");
      }
      return BoundExpr::Op(
          op == sql::BinaryOp::kAnd ? ScalarOp::kAnd : ScalarOp::kOr,
          DataType::kBoolean, children());
    }
  }
  return Status::Internal("unreachable binary op");
}

Result<BoundExprPtr> Binder::MakeCast(BoundExprPtr operand, DataType target) {
  const DataType from = operand->type;
  const bool ok = from == target || from == DataType::kNull ||
                  target == DataType::kVarchar ||
                  (IsNumericOrNull(from) && IsNumericOrNull(target) &&
                   target != DataType::kNull);
  if (!ok) {
    return Status::BindError(std::string("cannot CAST ") +
                             DataTypeToString(from) + " to " +
                             DataTypeToString(target));
  }
  std::vector<BoundExprPtr> children;
  children.push_back(std::move(operand));
  return BoundExpr::Op(ScalarOp::kCast, target, std::move(children));
}

Result<BoundExprPtr> Binder::MakeScalarFunction(
    const std::string& name, std::vector<BoundExprPtr> args) {
  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::BindError(name + " requires " + std::to_string(n) +
                               " argument(s)");
    }
    return Status::OK();
  };
  auto arg_type = [&](size_t i) { return args[i]->type; };

  if (IdentEquals(name, "LOWER") || IdentEquals(name, "UPPER")) {
    ONESQL_RETURN_NOT_OK(require_args(1));
    if (arg_type(0) != DataType::kVarchar && arg_type(0) != DataType::kNull) {
      return Status::BindError(name + " requires a VARCHAR argument");
    }
    return BoundExpr::Op(IdentEquals(name, "LOWER") ? ScalarOp::kLower
                                                    : ScalarOp::kUpper,
                         DataType::kVarchar, std::move(args));
  }
  if (IdentEquals(name, "CHAR_LENGTH") || IdentEquals(name, "LENGTH")) {
    ONESQL_RETURN_NOT_OK(require_args(1));
    if (arg_type(0) != DataType::kVarchar && arg_type(0) != DataType::kNull) {
      return Status::BindError(name + " requires a VARCHAR argument");
    }
    return BoundExpr::Op(ScalarOp::kCharLength, DataType::kBigint,
                         std::move(args));
  }
  if (IdentEquals(name, "ABS") || IdentEquals(name, "FLOOR") ||
      IdentEquals(name, "CEIL") || IdentEquals(name, "CEILING")) {
    ONESQL_RETURN_NOT_OK(require_args(1));
    if (!IsNumericOrNull(arg_type(0))) {
      return Status::BindError(name + " requires a numeric argument");
    }
    ScalarOp op = ScalarOp::kAbs;
    if (IdentEquals(name, "FLOOR")) op = ScalarOp::kFloor;
    if (IdentEquals(name, "CEIL") || IdentEquals(name, "CEILING")) {
      op = ScalarOp::kCeil;
    }
    const DataType result_type = arg_type(0);  // before args is moved from
    return BoundExpr::Op(op, result_type, std::move(args));
  }
  if (IdentEquals(name, "CONCAT")) {
    if (args.size() < 2) {
      return Status::BindError("CONCAT requires at least two arguments");
    }
    return BoundExpr::Op(ScalarOp::kConcat, DataType::kVarchar,
                         std::move(args));
  }
  if (IdentEquals(name, "COALESCE")) {
    if (args.size() < 2) {
      return Status::BindError("COALESCE requires at least two arguments");
    }
    DataType common = DataType::kNull;
    for (const auto& arg : args) {
      if (arg->type == DataType::kNull) continue;
      if (common == DataType::kNull) {
        common = arg->type;
      } else if (arg->type != common) {
        if (IsNumericOrNull(arg->type) && IsNumericOrNull(common)) {
          common = CommonNumeric(arg->type, common);
        } else {
          return Status::BindError("COALESCE arguments have incompatible "
                                   "types");
        }
      }
    }
    return BoundExpr::Op(ScalarOp::kCoalesce, common, std::move(args));
  }
  return Status::BindError("unknown function '" + name + "'");
}

Result<AggregateCall> Binder::MakeAggregateCall(
    const sql::FunctionCallExpr& call, const Scope& scope) {
  AggregateCall out;
  out.distinct = call.distinct();

  const std::string& name = call.name();
  const bool is_count = IdentEquals(name, "COUNT");

  if (call.args().size() != 1) {
    return Status::BindError("aggregate " + name +
                             " requires exactly one argument");
  }
  const sql::Expr& arg = *call.args()[0];
  if (arg.kind() == sql::Expr::Kind::kStar) {
    if (!is_count) {
      return Status::BindError("'*' is only valid in COUNT(*)");
    }
    if (out.distinct) {
      return Status::BindError("COUNT(DISTINCT *) is not valid");
    }
    out.fn = AggFn::kCountStar;
    out.result_type = DataType::kBigint;
    return out;
  }
  if (ContainsAggregate(arg)) {
    return Status::BindError("aggregate calls cannot be nested");
  }
  ONESQL_ASSIGN_OR_RETURN(out.arg, BindScalar(arg, scope));
  const DataType at = out.arg->type;

  if (is_count) {
    out.fn = AggFn::kCount;
    out.result_type = DataType::kBigint;
    return out;
  }
  if (IdentEquals(name, "SUM")) {
    if (!IsNumericOrNull(at)) {
      return Status::BindError("SUM requires a numeric argument");
    }
    out.fn = AggFn::kSum;
    out.result_type = at == DataType::kDouble ? DataType::kDouble
                                              : DataType::kBigint;
    return out;
  }
  if (IdentEquals(name, "AVG")) {
    if (!IsNumericOrNull(at)) {
      return Status::BindError("AVG requires a numeric argument");
    }
    out.fn = AggFn::kAvg;
    out.result_type = DataType::kDouble;
    return out;
  }
  if (IdentEquals(name, "MIN") || IdentEquals(name, "MAX")) {
    if (at == DataType::kBoolean) {
      return Status::BindError("MIN/MAX over BOOLEAN is not supported");
    }
    out.fn = IdentEquals(name, "MIN") ? AggFn::kMin : AggFn::kMax;
    out.result_type = at;
    return out;
  }
  return Status::BindError("unknown aggregate function '" + name + "'");
}

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

Result<BoundExprPtr> Binder::BindScalar(const sql::Expr& expr,
                                        const Scope& scope) {
  switch (expr.kind()) {
    case sql::Expr::Kind::kLiteral:
      return BoundExpr::Literal(
          static_cast<const sql::LiteralExpr&>(expr).value());
    case sql::Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(auto resolved,
                              scope.Resolve(ref.qualifier(), ref.name()));
      return BoundExpr::InputRef(resolved.first, resolved.second.type);
    }
    case sql::Expr::Kind::kStar:
      return Status::BindError("'*' is not allowed in this context");
    case sql::Expr::Kind::kCurrentTime:
      return Status::NotImplemented(
          "CURRENT_TIME is only supported in WHERE predicates of the form "
          "<event-time column> > CURRENT_TIME - <interval> (time-progressing "
          "expressions)");
    case sql::Expr::Kind::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      if (IsAggregateFunctionName(call.name())) {
        return Status::BindError("aggregate function " + call.name() +
                                 " is not allowed in this context");
      }
      if (call.distinct()) {
        return Status::BindError("DISTINCT is only valid in aggregates");
      }
      std::vector<BoundExprPtr> args;
      for (const auto& arg : call.args()) {
        ONESQL_ASSIGN_OR_RETURN(BoundExprPtr bound, BindScalar(*arg, scope));
        args.push_back(std::move(bound));
      }
      return MakeScalarFunction(call.name(), std::move(args));
    }
    case sql::Expr::Kind::kUnary: {
      const auto& un = static_cast<const sql::UnaryExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr operand,
                              BindScalar(un.operand(), scope));
      return MakeUnary(un.op(), std::move(operand));
    }
    case sql::Expr::Kind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr left, BindScalar(bin.left(), scope));
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr right,
                              BindScalar(bin.right(), scope));
      return MakeBinary(bin.op(), std::move(left), std::move(right));
    }
    case sql::Expr::Kind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      std::vector<BoundExprPtr> children;
      DataType result_type = DataType::kNull;
      for (const auto& w : c.whens()) {
        ONESQL_ASSIGN_OR_RETURN(BoundExprPtr cond,
                                BindScalar(*w.condition, scope));
        if (cond->type != DataType::kBoolean &&
            cond->type != DataType::kNull) {
          return Status::BindError("CASE WHEN condition must be BOOLEAN");
        }
        ONESQL_ASSIGN_OR_RETURN(BoundExprPtr res, BindScalar(*w.result, scope));
        if (result_type == DataType::kNull) {
          result_type = res->type;
        } else if (res->type != DataType::kNull && res->type != result_type) {
          if (IsNumericOrNull(res->type) && IsNumericOrNull(result_type)) {
            result_type = CommonNumeric(res->type, result_type);
          } else {
            return Status::BindError("CASE branches have incompatible types");
          }
        }
        children.push_back(std::move(cond));
        children.push_back(std::move(res));
      }
      if (c.else_result() != nullptr) {
        ONESQL_ASSIGN_OR_RETURN(BoundExprPtr els,
                                BindScalar(*c.else_result(), scope));
        if (els->type != DataType::kNull && els->type != result_type &&
            !(IsNumericOrNull(els->type) && IsNumericOrNull(result_type))) {
          return Status::BindError("CASE branches have incompatible types");
        }
        children.push_back(std::move(els));
      }
      return BoundExpr::Op(ScalarOp::kCase, result_type, std::move(children));
    }
    case sql::Expr::Kind::kCast: {
      const auto& cast = static_cast<const sql::CastExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr operand,
                              BindScalar(cast.operand(), scope));
      return MakeCast(std::move(operand), cast.target());
    }
    case sql::Expr::Kind::kIsNull: {
      const auto& in = static_cast<const sql::IsNullExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr operand,
                              BindScalar(in.operand(), scope));
      std::vector<BoundExprPtr> children;
      children.push_back(std::move(operand));
      return BoundExpr::Op(
          in.negated() ? ScalarOp::kIsNotNull : ScalarOp::kIsNull,
          DataType::kBoolean, std::move(children));
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<BoundExprPtr> Binder::BindAggregateContext(
    const sql::Expr& expr, const Scope& input_scope,
    const std::vector<BoundExprPtr>& keys,
    const std::vector<Field>& key_fields, std::vector<AggregateCall>* aggs) {
  // Aggregate function call: becomes a reference to an aggregate output.
  if (expr.kind() == sql::Expr::Kind::kFunctionCall) {
    const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
    if (IsAggregateFunctionName(call.name())) {
      ONESQL_ASSIGN_OR_RETURN(AggregateCall agg,
                              MakeAggregateCall(call, input_scope));
      size_t idx = aggs->size();
      for (size_t i = 0; i < aggs->size(); ++i) {
        if (AggregateCallEquals((*aggs)[i], agg)) {
          idx = i;
          break;
        }
      }
      if (idx == aggs->size()) aggs->push_back(agg.Clone());
      return BoundExpr::InputRef(keys.size() + idx, agg.result_type);
    }
  }

  // Try matching the whole expression against a grouping key.
  {
    auto attempt = BindScalar(expr, input_scope);
    if (attempt.ok()) {
      for (size_t i = 0; i < keys.size(); ++i) {
        if (BoundExprEquals(**attempt, *keys[i])) {
          return BoundExpr::InputRef(i, key_fields[i].type);
        }
      }
      if (!ReferencesInput(**attempt)) {
        return std::move(*attempt);  // constant expression
      }
    }
  }

  switch (expr.kind()) {
    case sql::Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      return Status::BindError(
          "column '" + ref.ToString() +
          "' must appear in the GROUP BY clause or be used in an aggregate "
          "function");
    }
    case sql::Expr::Kind::kLiteral:
      return BoundExpr::Literal(
          static_cast<const sql::LiteralExpr&>(expr).value());
    case sql::Expr::Kind::kUnary: {
      const auto& un = static_cast<const sql::UnaryExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(
          BoundExprPtr operand,
          BindAggregateContext(un.operand(), input_scope, keys, key_fields,
                               aggs));
      return MakeUnary(un.op(), std::move(operand));
    }
    case sql::Expr::Kind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(
          BoundExprPtr left,
          BindAggregateContext(bin.left(), input_scope, keys, key_fields,
                               aggs));
      ONESQL_ASSIGN_OR_RETURN(
          BoundExprPtr right,
          BindAggregateContext(bin.right(), input_scope, keys, key_fields,
                               aggs));
      return MakeBinary(bin.op(), std::move(left), std::move(right));
    }
    case sql::Expr::Kind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      std::vector<BoundExprPtr> children;
      DataType result_type = DataType::kNull;
      for (const auto& w : c.whens()) {
        ONESQL_ASSIGN_OR_RETURN(
            BoundExprPtr cond,
            BindAggregateContext(*w.condition, input_scope, keys, key_fields,
                                 aggs));
        ONESQL_ASSIGN_OR_RETURN(
            BoundExprPtr res,
            BindAggregateContext(*w.result, input_scope, keys, key_fields,
                                 aggs));
        if (result_type == DataType::kNull) result_type = res->type;
        children.push_back(std::move(cond));
        children.push_back(std::move(res));
      }
      if (c.else_result() != nullptr) {
        ONESQL_ASSIGN_OR_RETURN(
            BoundExprPtr els,
            BindAggregateContext(*c.else_result(), input_scope, keys,
                                 key_fields, aggs));
        children.push_back(std::move(els));
      }
      return BoundExpr::Op(ScalarOp::kCase, result_type, std::move(children));
    }
    case sql::Expr::Kind::kCast: {
      const auto& cast = static_cast<const sql::CastExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(
          BoundExprPtr operand,
          BindAggregateContext(cast.operand(), input_scope, keys, key_fields,
                               aggs));
      return MakeCast(std::move(operand), cast.target());
    }
    case sql::Expr::Kind::kIsNull: {
      const auto& in = static_cast<const sql::IsNullExpr&>(expr);
      ONESQL_ASSIGN_OR_RETURN(
          BoundExprPtr operand,
          BindAggregateContext(in.operand(), input_scope, keys, key_fields,
                               aggs));
      std::vector<BoundExprPtr> children;
      children.push_back(std::move(operand));
      return BoundExpr::Op(
          in.negated() ? ScalarOp::kIsNotNull : ScalarOp::kIsNull,
          DataType::kBoolean, std::move(children));
    }
    case sql::Expr::Kind::kFunctionCall: {
      // Aggregate calls were handled at the top; this is a scalar function
      // over aggregate-context arguments, e.g. ABS(SUM(x)).
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      std::vector<BoundExprPtr> args;
      for (const auto& arg : call.args()) {
        ONESQL_ASSIGN_OR_RETURN(
            BoundExprPtr bound,
            BindAggregateContext(*arg, input_scope, keys, key_fields, aggs));
        args.push_back(std::move(bound));
      }
      return MakeScalarFunction(call.name(), std::move(args));
    }
    default:
      return Status::BindError("unsupported expression in aggregate query: " +
                               expr.ToString());
  }
}

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

Result<Binder::BoundTable> Binder::BindTvf(const sql::TvfRef& tvf) {
  WindowKind wkind;
  std::vector<std::string> param_names;
  if (IdentEquals(tvf.function_name(), "Tumble")) {
    wkind = WindowKind::kTumble;
    param_names = {"data", "timecol", "dur", "offset"};
  } else if (IdentEquals(tvf.function_name(), "Hop")) {
    wkind = WindowKind::kHop;
    param_names = {"data", "timecol", "dur", "hopsize", "offset"};
  } else if (IdentEquals(tvf.function_name(), "Session")) {
    // Section 8 future work: keyed sessions (periods of activity separated
    // by gaps of at least `gap`, per optional key).
    wkind = WindowKind::kSession;
    param_names = {"data", "timecol", "gap", "key"};
  } else {
    return Status::BindError("unknown table-valued function '" +
                             tvf.function_name() + "'");
  }

  // Resolve named/positional arguments to parameter slots.
  std::vector<const sql::TvfArg*> slots(param_names.size(), nullptr);
  size_t positional = 0;
  for (const sql::TvfArg& arg : tvf.args()) {
    size_t slot;
    if (!arg.name.empty()) {
      auto it = std::find_if(
          param_names.begin(), param_names.end(),
          [&](const std::string& p) { return IdentEquals(p, arg.name); });
      if (it == param_names.end()) {
        return Status::BindError("unknown parameter '" + arg.name + "' for " +
                                 tvf.function_name());
      }
      slot = static_cast<size_t>(it - param_names.begin());
    } else {
      slot = positional++;
      if (slot >= param_names.size()) {
        return Status::BindError("too many arguments for " +
                                 tvf.function_name());
      }
    }
    if (slots[slot] != nullptr) {
      return Status::BindError("parameter '" + param_names[slot] +
                               "' specified twice");
    }
    slots[slot] = &arg;
  }

  // data
  if (slots[0] == nullptr || slots[0]->arg_kind != sql::TvfArg::Kind::kTable) {
    return Status::BindError(tvf.function_name() +
                             " requires a TABLE(...) 'data' argument");
  }
  ONESQL_ASSIGN_OR_RETURN(BoundTable data, BindTableRef(*slots[0]->table));
  const Schema& data_schema = data.node->schema();

  // timecol
  if (slots[1] == nullptr ||
      slots[1]->arg_kind != sql::TvfArg::Kind::kDescriptor) {
    return Status::BindError(tvf.function_name() +
                             " requires a DESCRIPTOR(...) 'timecol' argument");
  }
  auto timecol = data_schema.FindField(slots[1]->descriptor);
  if (!timecol.has_value()) {
    return Status::BindError("DESCRIPTOR column '" + slots[1]->descriptor +
                             "' not found in windowed relation");
  }
  const Field& time_field = data_schema.field(*timecol);
  if (time_field.type != DataType::kTimestamp) {
    return Status::BindError("timecol '" + slots[1]->descriptor +
                             "' must have type TIMESTAMP");
  }
  if (data.node->unbounded() && !time_field.is_event_time) {
    return Status::BindError(
        "timecol '" + slots[1]->descriptor +
        "' of an unbounded relation must be a watermarked event time column");
  }

  // Interval parameters.
  auto bind_interval = [&](const sql::TvfArg* arg,
                           const char* what) -> Result<Interval> {
    if (arg == nullptr) {
      return Status::BindError(std::string(tvf.function_name()) +
                               " requires parameter '" + what + "'");
    }
    if (arg->arg_kind != sql::TvfArg::Kind::kScalar ||
        arg->scalar->kind() != sql::Expr::Kind::kLiteral) {
      return Status::BindError(std::string("parameter '") + what +
                               "' must be an INTERVAL literal");
    }
    const Value& v =
        static_cast<const sql::LiteralExpr&>(*arg->scalar).value();
    if (v.type() != DataType::kInterval) {
      return Status::BindError(std::string("parameter '") + what +
                               "' must be an INTERVAL literal");
    }
    return v.AsInterval();
  };

  ONESQL_ASSIGN_OR_RETURN(
      Interval dur,
      bind_interval(slots[2], wkind == WindowKind::kSession ? "gap" : "dur"));
  if (dur.millis() <= 0) {
    return Status::BindError(wkind == WindowKind::kSession
                                 ? "session gap must be positive"
                                 : "window duration must be positive");
  }
  Interval hop = dur;
  Interval offset(0);
  std::optional<size_t> session_key;
  if (wkind == WindowKind::kHop) {
    ONESQL_ASSIGN_OR_RETURN(hop, bind_interval(slots[3], "hopsize"));
    if (hop.millis() <= 0) {
      return Status::BindError("hopsize must be positive");
    }
    if (slots[4] != nullptr) {
      ONESQL_ASSIGN_OR_RETURN(offset, bind_interval(slots[4], "offset"));
    }
  } else if (wkind == WindowKind::kTumble) {
    if (slots[3] != nullptr) {
      ONESQL_ASSIGN_OR_RETURN(offset, bind_interval(slots[3], "offset"));
    }
  } else {  // kSession: optional DESCRIPTOR key
    if (slots[3] != nullptr) {
      if (slots[3]->arg_kind != sql::TvfArg::Kind::kDescriptor) {
        return Status::BindError(
            "Session 'key' must be a DESCRIPTOR(...) argument");
      }
      auto key_idx = data_schema.FindField(slots[3]->descriptor);
      if (!key_idx.has_value()) {
        return Status::BindError("DESCRIPTOR column '" + slots[3]->descriptor +
                                 "' not found in sessionized relation");
      }
      session_key = *key_idx;
    }
  }

  Schema out_schema = data_schema;
  out_schema.AddField(Field{"wstart", DataType::kTimestamp,
                            /*is_event_time=*/true, WindowRole::kStart});
  out_schema.AddField(Field{"wend", DataType::kTimestamp,
                            /*is_event_time=*/true, WindowRole::kEnd});

  BoundTable out;
  out.node = std::make_unique<WindowNode>(std::move(data.node), wkind,
                                          *timecol, dur, hop, offset,
                                          out_schema, session_key);
  const std::string range_name =
      tvf.alias().empty() ? tvf.function_name() : tvf.alias();
  out.ranges.push_back(ScopeRange{range_name, out_schema, 0});
  return out;
}

Result<Binder::BoundTable> Binder::BindTableRef(const sql::TableRef& ref) {
  switch (ref.kind()) {
    case sql::TableRef::Kind::kBase: {
      const auto& base = static_cast<const sql::BaseTableRef&>(ref);
      ONESQL_ASSIGN_OR_RETURN(const TableDef* def,
                              catalog_->Lookup(base.name()));
      BoundTable out;
      out.node = std::make_unique<ScanNode>(def->name, def->schema,
                                            def->unbounded);
      const std::string range_name =
          base.alias().empty() ? base.name() : base.alias();
      out.ranges.push_back(ScopeRange{range_name, def->schema, 0});
      return out;
    }
    case sql::TableRef::Kind::kDerived: {
      const auto& derived = static_cast<const sql::DerivedTableRef&>(ref);
      ONESQL_ASSIGN_OR_RETURN(BoundSelect sub,
                              BindSelect(derived.query(), /*top_level=*/false));
      BoundTable out;
      Schema schema = sub.node->schema();
      out.node = std::move(sub.node);
      out.ranges.push_back(ScopeRange{derived.alias(), schema, 0});
      return out;
    }
    case sql::TableRef::Kind::kTvf:
      return BindTvf(static_cast<const sql::TvfRef&>(ref));
    case sql::TableRef::Kind::kJoin: {
      const auto& join = static_cast<const sql::JoinRef&>(ref);
      ONESQL_ASSIGN_OR_RETURN(BoundTable left, BindTableRef(join.left()));
      ONESQL_ASSIGN_OR_RETURN(BoundTable right, BindTableRef(join.right()));
      const size_t left_cols = left.node->schema().num_fields();
      Scope scope;
      scope.ranges = left.ranges;
      for (ScopeRange r : right.ranges) {
        r.offset += left_cols;
        scope.ranges.push_back(std::move(r));
      }
      BoundExprPtr condition;
      if (join.condition() != nullptr) {
        ONESQL_ASSIGN_OR_RETURN(condition,
                                BindScalar(*join.condition(), scope));
        if (condition->type != DataType::kBoolean &&
            condition->type != DataType::kNull) {
          return Status::BindError("join condition must be BOOLEAN");
        }
      } else if (join.join_type() != sql::JoinType::kCross) {
        return Status::BindError("JOIN requires an ON condition");
      }
      Schema schema = scope.Concat();
      BoundTable out;
      out.node = std::make_unique<JoinNode>(join.join_type(),
                                            std::move(left.node),
                                            std::move(right.node),
                                            std::move(condition), schema);
      out.ranges = std::move(scope.ranges);
      return out;
    }
  }
  return Status::Internal("unreachable table ref kind");
}

// ---------------------------------------------------------------------------
// SELECT binding
// ---------------------------------------------------------------------------

Result<Binder::BoundSelect> Binder::BindSelect(const sql::SelectStmt& stmt,
                                               bool top_level) {
  if (stmt.from.empty()) {
    return Status::BindError("queries without a FROM clause are not supported");
  }
  if (!top_level) {
    if (stmt.emit.has_value()) {
      return Status::BindError(
          "EMIT is only allowed at the top level of a query");
    }
    if (!stmt.order_by.empty() || stmt.limit.has_value()) {
      return Status::BindError(
          "ORDER BY / LIMIT are only allowed at the top level");
    }
  }

  // FROM: combine comma-separated items with cross joins.
  BoundTable from;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    ONESQL_ASSIGN_OR_RETURN(BoundTable item, BindTableRef(*stmt.from[i]));
    if (i == 0) {
      from = std::move(item);
      continue;
    }
    const size_t left_cols = from.node->schema().num_fields();
    for (ScopeRange r : item.ranges) {
      r.offset += left_cols;
      from.ranges.push_back(std::move(r));
    }
    Scope merged;
    merged.ranges = from.ranges;
    Schema schema = merged.Concat();
    from.node = std::make_unique<JoinNode>(sql::JoinType::kCross,
                                           std::move(from.node),
                                           std::move(item.node), nullptr,
                                           schema);
  }

  Scope scope;
  scope.ranges = from.ranges;
  LogicalNodePtr node = std::move(from.node);

  // Duplicate range names are ambiguous.
  for (size_t i = 0; i < scope.ranges.size(); ++i) {
    for (size_t j = i + 1; j < scope.ranges.size(); ++j) {
      if (!scope.ranges[i].name.empty() &&
          IdentEquals(scope.ranges[i].name, scope.ranges[j].name)) {
        return Status::BindError("duplicate table alias '" +
                                 scope.ranges[i].name + "'");
      }
    }
  }

  if (stmt.where != nullptr) {
    // Time-progressing predicates (Section 8 future work) are split out of
    // the WHERE conjunction: `<event-time col> >|>= CURRENT_TIME - <ivl>`
    // becomes a TemporalFilter that retracts rows as the watermark passes
    // their horizon.
    std::vector<const sql::Expr*> conjuncts;
    CollectAstConjuncts(*stmt.where, &conjuncts);
    std::vector<BoundExprPtr> regular;
    for (const sql::Expr* conjunct : conjuncts) {
      if (ContainsCurrentTime(*conjunct)) {
        const auto* bin =
            conjunct->kind() == sql::Expr::Kind::kBinary
                ? static_cast<const sql::BinaryExpr*>(conjunct)
                : nullptr;
        const sql::Expr* col_side = nullptr;
        std::optional<Interval> horizon;
        if (bin != nullptr) {
          if ((bin->op() == sql::BinaryOp::kGt ||
               bin->op() == sql::BinaryOp::kGe)) {
            horizon = ParseCurrentTimeSide(bin->right());
            col_side = &bin->left();
          }
          if (!horizon.has_value() && (bin->op() == sql::BinaryOp::kLt ||
                                       bin->op() == sql::BinaryOp::kLe)) {
            horizon = ParseCurrentTimeSide(bin->left());
            col_side = &bin->right();
          }
        }
        if (!horizon.has_value() || col_side == nullptr ||
            col_side->kind() != sql::Expr::Kind::kColumnRef) {
          return Status::NotImplemented(
              "CURRENT_TIME is only supported in predicates of the form "
              "<event-time column> > CURRENT_TIME - <interval>");
        }
        const auto& ref = static_cast<const sql::ColumnRefExpr&>(*col_side);
        ONESQL_ASSIGN_OR_RETURN(auto resolved,
                                scope.Resolve(ref.qualifier(), ref.name()));
        if (resolved.second.type != DataType::kTimestamp ||
            (node->unbounded() && !resolved.second.is_event_time)) {
          return Status::BindError(
              "CURRENT_TIME predicates require a watermarked event-time "
              "column, got '" + ref.ToString() + "'");
        }
        node = std::make_unique<TemporalFilterNode>(std::move(node),
                                                    resolved.first, *horizon);
        continue;
      }
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr bound,
                              BindScalar(*conjunct, scope));
      if (bound->type != DataType::kBoolean &&
          bound->type != DataType::kNull) {
        return Status::BindError("WHERE clause must be BOOLEAN");
      }
      regular.push_back(std::move(bound));
    }
    if (!regular.empty()) {
      node = std::make_unique<FilterNode>(std::move(node),
                                          CombineConjuncts(std::move(regular)));
    }
  }

  bool aggregated = !stmt.group_by.empty();
  if (!aggregated) {
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind() != sql::Expr::Kind::kStar &&
          ContainsAggregate(*item.expr)) {
        aggregated = true;
        break;
      }
    }
    if (stmt.having != nullptr && ContainsAggregate(*stmt.having)) {
      aggregated = true;
    }
  }
  if (stmt.having != nullptr && !aggregated) {
    return Status::BindError("HAVING requires aggregation");
  }

  std::vector<BoundExprPtr> project_exprs;
  Schema project_schema;
  std::vector<int64_t> group_key_origin;
  const Schema input_schema = scope.Concat();

  auto output_name = [&](const sql::SelectItem& item, size_t index) {
    if (!item.alias.empty()) return item.alias;
    if (item.expr->kind() == sql::Expr::Kind::kColumnRef) {
      return static_cast<const sql::ColumnRefExpr&>(*item.expr).name();
    }
    return std::string("EXPR$") + std::to_string(index);
  };

  if (aggregated) {
    // Bind grouping keys.
    std::vector<BoundExprPtr> keys;
    std::vector<Field> key_fields;
    auto add_key = [&](BoundExprPtr key, std::string name) {
      for (const auto& existing : keys) {
        if (BoundExprEquals(*existing, *key)) return;
      }
      Field kf;
      kf.type = key->type;
      kf.name = std::move(name);
      if (key->kind == BoundExpr::Kind::kInputRef) {
        const Field& src = input_schema.field(key->input_index);
        kf.is_event_time = src.is_event_time;
        kf.window_role = src.window_role;
        if (kf.name.empty()) kf.name = src.name;
      }
      if (kf.name.empty()) {
        kf.name = "$key" + std::to_string(keys.size());
      }
      keys.push_back(std::move(key));
      key_fields.push_back(std::move(kf));
    };

    for (const auto& key_ast : stmt.group_by) {
      if (ContainsAggregate(*key_ast)) {
        return Status::BindError("aggregate functions are not allowed in "
                                 "GROUP BY");
      }
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr key, BindScalar(*key_ast, scope));
      std::string name;
      if (key_ast->kind() == sql::Expr::Kind::kColumnRef) {
        name = static_cast<const sql::ColumnRefExpr&>(*key_ast).name();
      }
      add_key(std::move(key), std::move(name));
    }

    // Window functional dependency: grouping by wend makes wstart available
    // (and vice versa), since the pair is determined by either member.
    {
      const size_t explicit_keys = keys.size();
      for (size_t i = 0; i < explicit_keys; ++i) {
        if (keys[i]->kind != BoundExpr::Kind::kInputRef) continue;
        const size_t idx = keys[i]->input_index;
        const Field& f = input_schema.field(idx);
        if (f.window_role == WindowRole::kEnd && idx >= 1) {
          const Field& sib = input_schema.field(idx - 1);
          if (sib.window_role == WindowRole::kStart) {
            add_key(BoundExpr::InputRef(idx - 1, sib.type), sib.name);
          }
        } else if (f.window_role == WindowRole::kStart &&
                   idx + 1 < input_schema.num_fields()) {
          const Field& sib = input_schema.field(idx + 1);
          if (sib.window_role == WindowRole::kEnd) {
            add_key(BoundExpr::InputRef(idx + 1, sib.type), sib.name);
          }
        }
      }
    }

    // Extension 2: unbounded GROUP BY requires an event-time grouping key.
    std::vector<size_t> event_time_keys;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i]->kind == BoundExpr::Kind::kInputRef &&
          input_schema.field(keys[i]->input_index).is_event_time) {
        event_time_keys.push_back(i);
      }
    }
    // Extension 2 applies to GROUP BY clauses; a *global* aggregation (no
    // grouping keys) maintains a single continuously-updated row with O(1)
    // state and is allowed over unbounded inputs.
    if (!keys.empty() && node->unbounded() && event_time_keys.empty()) {
      return Status::BindError(
          "GROUP BY over an unbounded input requires at least one event-time "
          "grouping key (Extension 2)");
    }

    // Bind select list and HAVING, accumulating aggregate calls.
    std::vector<AggregateCall> aggs;
    std::vector<std::string> out_names;
    std::vector<BoundExprPtr> out_exprs;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      if (item.expr->kind() == sql::Expr::Kind::kStar) {
        return Status::BindError(
            "SELECT * cannot be combined with GROUP BY or aggregates");
      }
      ONESQL_ASSIGN_OR_RETURN(
          BoundExprPtr bound,
          BindAggregateContext(*item.expr, scope, keys, key_fields, &aggs));
      out_names.push_back(output_name(item, i));
      out_exprs.push_back(std::move(bound));
    }
    BoundExprPtr having_bound;
    if (stmt.having != nullptr) {
      ONESQL_ASSIGN_OR_RETURN(
          having_bound,
          BindAggregateContext(*stmt.having, scope, keys, key_fields, &aggs));
      if (having_bound->type != DataType::kBoolean &&
          having_bound->type != DataType::kNull) {
        return Status::BindError("HAVING clause must be BOOLEAN");
      }
    }

    // Aggregate output schema: keys, then aggregates.
    Schema agg_schema;
    for (const Field& kf : key_fields) agg_schema.AddField(kf);
    for (size_t i = 0; i < aggs.size(); ++i) {
      agg_schema.AddField(Field{"$agg" + std::to_string(i),
                                aggs[i].result_type, false});
    }

    node = std::make_unique<AggregateNode>(std::move(node), std::move(keys),
                                           std::move(aggs), event_time_keys,
                                           agg_schema);
    if (having_bound != nullptr) {
      node = std::make_unique<FilterNode>(std::move(node),
                                          std::move(having_bound));
    }

    const size_t num_keys = key_fields.size();
    for (size_t i = 0; i < out_exprs.size(); ++i) {
      Field f;
      f.name = out_names[i];
      f.type = out_exprs[i]->type;
      int64_t origin = -1;
      if (out_exprs[i]->kind == BoundExpr::Kind::kInputRef) {
        const size_t idx = out_exprs[i]->input_index;
        const Field& src = agg_schema.field(idx);
        f.is_event_time = src.is_event_time;
        f.window_role = src.window_role;
        if (idx < num_keys) origin = static_cast<int64_t>(idx);
      }
      project_schema.AddField(std::move(f));
      project_exprs.push_back(std::move(out_exprs[i]));
      group_key_origin.push_back(origin);
    }
  } else {
    // Non-aggregated: expand stars, bind scalars.
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      if (item.expr->kind() == sql::Expr::Kind::kStar) {
        const auto& star = static_cast<const sql::StarExpr&>(*item.expr);
        bool matched = false;
        for (const auto& range : scope.ranges) {
          if (!star.qualifier().empty() &&
              !IdentEquals(range.name, star.qualifier())) {
            continue;
          }
          matched = true;
          for (size_t c = 0; c < range.schema.num_fields(); ++c) {
            const Field& f = range.schema.field(c);
            project_exprs.push_back(
                BoundExpr::InputRef(range.offset + c, f.type));
            project_schema.AddField(f);
            group_key_origin.push_back(-1);
          }
        }
        if (!matched) {
          return Status::BindError("unknown table alias '" +
                                   star.qualifier() + "'");
        }
        continue;
      }
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr bound,
                              BindScalar(*item.expr, scope));
      Field f;
      f.name = output_name(item, i);
      f.type = bound->type;
      if (bound->kind == BoundExpr::Kind::kInputRef) {
        const Field& src = input_schema.field(bound->input_index);
        f.is_event_time = src.is_event_time;
        f.window_role = src.window_role;
      }
      project_schema.AddField(std::move(f));
      project_exprs.push_back(std::move(bound));
      group_key_origin.push_back(-1);
    }
  }

  node = std::make_unique<ProjectNode>(std::move(node),
                                       std::move(project_exprs),
                                       project_schema);

  if (stmt.distinct) {
    // DISTINCT is a grouping by every output column.
    const Schema& schema = node->schema();
    std::vector<BoundExprPtr> keys;
    std::vector<size_t> event_time_keys;
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      keys.push_back(BoundExpr::InputRef(i, schema.field(i).type));
      if (schema.field(i).is_event_time) event_time_keys.push_back(i);
    }
    if (node->unbounded() && event_time_keys.empty()) {
      return Status::BindError(
          "DISTINCT over an unbounded input requires an event-time column "
          "(Extension 2)");
    }
    Schema distinct_schema = schema;
    node = std::make_unique<AggregateNode>(
        std::move(node), std::move(keys), std::vector<AggregateCall>{},
        event_time_keys, distinct_schema);
    group_key_origin.assign(distinct_schema.num_fields(), 0);
    for (size_t i = 0; i < group_key_origin.size(); ++i) {
      group_key_origin[i] = static_cast<int64_t>(i);
    }
    aggregated = true;
  }

  BoundSelect out;
  out.node = std::move(node);
  out.group_key_origin = std::move(group_key_origin);
  out.aggregated = aggregated;
  return out;
}

Result<QueryPlan> Binder::Bind(const sql::SelectStmt& stmt) {
  ONESQL_ASSIGN_OR_RETURN(BoundSelect bound,
                          BindSelect(stmt, /*top_level=*/true));
  QueryPlan plan;
  plan.output_schema = bound.node->schema();
  plan.root = std::move(bound.node);
  plan.emit = stmt.emit;
  plan.limit = stmt.limit;

  // ORDER BY binds against the output schema.
  if (!stmt.order_by.empty()) {
    Scope out_scope;
    out_scope.ranges.push_back(ScopeRange{"", plan.output_schema, 0});
    for (const auto& item : stmt.order_by) {
      ONESQL_ASSIGN_OR_RETURN(BoundExprPtr e,
                              BindScalar(*item.expr, out_scope));
      plan.order_by.emplace_back(std::move(e), item.descending);
    }
  }

  // Version key ("the same event-time grouping", Extension 4): the window
  // columns of the output when present — they identify the event-time window
  // whose revisions `ver` numbers, even when the window flows through joins
  // (the paper's Listing 9). Otherwise the grouping keys of a top-level
  // aggregation; otherwise the whole row.
  for (size_t j = 0; j < plan.output_schema.num_fields(); ++j) {
    if (plan.output_schema.field(j).window_role != WindowRole::kNone) {
      plan.version_key_columns.push_back(j);
    }
  }
  if (plan.version_key_columns.empty() && bound.aggregated) {
    for (size_t j = 0; j < bound.group_key_origin.size(); ++j) {
      if (bound.group_key_origin[j] >= 0) {
        plan.version_key_columns.push_back(j);
      }
    }
  }

  // Completeness column: prefer a window-end event-time column.
  for (size_t j = 0; j < plan.output_schema.num_fields(); ++j) {
    const Field& f = plan.output_schema.field(j);
    if (f.is_event_time && f.window_role == WindowRole::kEnd) {
      plan.completeness_column = j;
      break;
    }
  }
  if (!plan.completeness_column.has_value()) {
    for (size_t j = 0; j < plan.output_schema.num_fields(); ++j) {
      if (plan.output_schema.field(j).is_event_time) {
        plan.completeness_column = j;
        break;
      }
    }
  }

  if (plan.emit.has_value() && plan.emit->after_watermark &&
      !plan.completeness_column.has_value()) {
    return Status::BindError(
        "EMIT AFTER WATERMARK requires a watermarked event-time column in "
        "the query result");
  }

  return plan;
}

}  // namespace plan
}  // namespace onesql
