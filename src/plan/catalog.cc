#include "plan/catalog.h"

namespace onesql {
namespace plan {

Status Catalog::Register(TableDef def) {
  const std::string key = ToLower(def.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + def.name +
                                 "' is already registered");
  }
  tables_.emplace(key, std::move(def));
  return Status::OK();
}

Result<const TableDef*> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + name + "' not found in catalog");
  }
  return &it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

}  // namespace plan
}  // namespace onesql
