#include "plan/bound_expr.h"

#include <algorithm>

namespace onesql {
namespace plan {

const char* ScalarOpToString(ScalarOp op) {
  switch (op) {
    case ScalarOp::kAdd: return "+";
    case ScalarOp::kSub: return "-";
    case ScalarOp::kMul: return "*";
    case ScalarOp::kDiv: return "/";
    case ScalarOp::kMod: return "%";
    case ScalarOp::kNeg: return "neg";
    case ScalarOp::kEq: return "=";
    case ScalarOp::kNeq: return "<>";
    case ScalarOp::kLt: return "<";
    case ScalarOp::kLe: return "<=";
    case ScalarOp::kGt: return ">";
    case ScalarOp::kGe: return ">=";
    case ScalarOp::kAnd: return "AND";
    case ScalarOp::kOr: return "OR";
    case ScalarOp::kNot: return "NOT";
    case ScalarOp::kIsNull: return "IS NULL";
    case ScalarOp::kIsNotNull: return "IS NOT NULL";
    case ScalarOp::kCase: return "CASE";
    case ScalarOp::kCast: return "CAST";
    case ScalarOp::kLower: return "LOWER";
    case ScalarOp::kUpper: return "UPPER";
    case ScalarOp::kCharLength: return "CHAR_LENGTH";
    case ScalarOp::kAbs: return "ABS";
    case ScalarOp::kFloor: return "FLOOR";
    case ScalarOp::kCeil: return "CEIL";
    case ScalarOp::kConcat: return "CONCAT";
    case ScalarOp::kCoalesce: return "COALESCE";
  }
  return "?";
}

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar: return "COUNT(*)";
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
    case AggFn::kAvg: return "AVG";
  }
  return "?";
}

std::unique_ptr<BoundExpr> BoundExpr::Literal(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::InputRef(size_t index, DataType type) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kInputRef;
  e->type = type;
  e->input_index = index;
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Op(
    ScalarOp op, DataType result_type,
    std::vector<std::unique_ptr<BoundExpr>> children) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kOp;
  e->type = result_type;
  e->op = op;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Clone() const {
  auto e = std::make_unique<BoundExpr>();
  e->kind = kind;
  e->type = type;
  e->literal = literal;
  e->input_index = input_index;
  e->op = op;
  e->children.reserve(children.size());
  for (const auto& child : children) {
    e->children.push_back(child->Clone());
  }
  return e;
}

std::string BoundExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kInputRef:
      return "#" + std::to_string(input_index);
    case Kind::kOp: {
      std::string out = "(";
      out += ScalarOpToString(op);
      for (const auto& child : children) {
        out += " ";
        out += child->ToString();
      }
      out += ")";
      if (op == ScalarOp::kCast) {
        out += "->";
        out += DataTypeToString(type);
      }
      return out;
    }
  }
  return "?";
}

bool BoundExprEquals(const BoundExpr& a, const BoundExpr& b) {
  if (a.kind != b.kind || a.type != b.type) return false;
  switch (a.kind) {
    case BoundExpr::Kind::kLiteral:
      return a.literal == b.literal;
    case BoundExpr::Kind::kInputRef:
      return a.input_index == b.input_index;
    case BoundExpr::Kind::kOp: {
      if (a.op != b.op || a.children.size() != b.children.size()) return false;
      for (size_t i = 0; i < a.children.size(); ++i) {
        if (!BoundExprEquals(*a.children[i], *b.children[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool ReferencesInput(const BoundExpr& expr) {
  if (expr.kind == BoundExpr::Kind::kInputRef) return true;
  for (const auto& child : expr.children) {
    if (ReferencesInput(*child)) return true;
  }
  return false;
}

void CollectInputRefs(const BoundExpr& expr, std::vector<size_t>* out) {
  if (expr.kind == BoundExpr::Kind::kInputRef) {
    out->push_back(expr.input_index);
  }
  for (const auto& child : expr.children) {
    CollectInputRefs(*child, out);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void ShiftInputRefs(BoundExpr* expr, int64_t offset) {
  if (expr->kind == BoundExpr::Kind::kInputRef) {
    expr->input_index = static_cast<size_t>(
        static_cast<int64_t>(expr->input_index) + offset);
  }
  for (auto& child : expr->children) {
    ShiftInputRefs(child.get(), offset);
  }
}

AggregateCall AggregateCall::Clone() const {
  AggregateCall out;
  out.fn = fn;
  out.arg = arg ? arg->Clone() : nullptr;
  out.distinct = distinct;
  out.result_type = result_type;
  return out;
}

std::string AggregateCall::ToString() const {
  if (fn == AggFn::kCountStar) return "COUNT(*)";
  std::string out = AggFnToString(fn);
  out += "(";
  if (distinct) out += "DISTINCT ";
  out += arg ? arg->ToString() : "";
  out += ")";
  return out;
}

bool AggregateCallEquals(const AggregateCall& a, const AggregateCall& b) {
  if (a.fn != b.fn || a.distinct != b.distinct ||
      a.result_type != b.result_type) {
    return false;
  }
  if ((a.arg == nullptr) != (b.arg == nullptr)) return false;
  return a.arg == nullptr || BoundExprEquals(*a.arg, *b.arg);
}

}  // namespace plan
}  // namespace onesql
