#include "plan/fingerprint.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace onesql {
namespace plan {

namespace {

// Canonical expression rendering: positional references, typed literals,
// operator names. No identifier ever appears, so aliases cannot leak in.
std::string CanonExpr(const BoundExpr& e) {
  switch (e.kind) {
    case BoundExpr::Kind::kLiteral:
      return std::string("lit<") + DataTypeToString(e.literal.type()) + ">" +
             e.literal.ToString();
    case BoundExpr::Kind::kInputRef:
      return "#" + std::to_string(e.input_index) + "<" +
             DataTypeToString(e.type) + ">";
    case BoundExpr::Kind::kOp: {
      std::string out = ScalarOpToString(e.op);
      out += "<";
      out += DataTypeToString(e.type);
      out += ">(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ",";
        out += CanonExpr(*e.children[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

/// Flattens an AND tree into its conjuncts.
void CollectConjuncts(const BoundExpr& e, std::vector<const BoundExpr*>* out) {
  if (e.kind == BoundExpr::Kind::kOp && e.op == ScalarOp::kAnd) {
    for (const auto& child : e.children) CollectConjuncts(*child, out);
    return;
  }
  out->push_back(&e);
}

/// Filter predicates are order-insensitive per conjunct (a filter never
/// reorders rows), so the canonical form sorts the conjunct renderings.
std::string CanonPredicate(const BoundExpr& predicate) {
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(predicate, &conjuncts);
  std::vector<std::string> rendered;
  rendered.reserve(conjuncts.size());
  for (const BoundExpr* c : conjuncts) rendered.push_back(CanonExpr(*c));
  std::sort(rendered.begin(), rendered.end());
  std::string out = "and{";
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out += ";";
    out += rendered[i];
  }
  out += "}";
  return out;
}

std::string CanonNode(const LogicalNode& node) {
  switch (node.kind()) {
    case LogicalNode::Kind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      // Source names are catalog identity, not aliases: lower-cased so the
      // fingerprint matches the catalog's case-insensitive resolution.
      std::string out = "scan(" + ToLower(scan.source());
      // Column types (not names) pin the source's shape, so a re-registered
      // source with a different schema cannot collide.
      for (const Field& f : scan.schema().fields()) {
        out += ",";
        out += DataTypeToString(f.type);
        if (f.is_event_time) out += "*";
      }
      out += ")";
      return out;
    }
    case LogicalNode::Kind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      return "filter(" + CanonPredicate(filter.predicate()) + "," +
             CanonNode(filter.input()) + ")";
    }
    case LogicalNode::Kind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      std::string out = "project([";
      for (size_t i = 0; i < project.exprs().size(); ++i) {
        if (i > 0) out += ",";
        out += CanonExpr(*project.exprs()[i]);
      }
      out += "],";
      out += CanonNode(project.input());
      out += ")";
      return out;
    }
    case LogicalNode::Kind::kTemporalFilter: {
      const auto& tf = static_cast<const TemporalFilterNode&>(node);
      return "temporal(#" + std::to_string(tf.et_col()) + "," +
             std::to_string(tf.horizon().millis()) + "," +
             CanonNode(tf.input()) + ")";
    }
    case LogicalNode::Kind::kWindow: {
      const auto& w = static_cast<const WindowNode&>(node);
      std::string out = std::string("window(") +
                        WindowKindToString(w.window_kind()) + ",#" +
                        std::to_string(w.timecol()) + ",dur=" +
                        std::to_string(w.dur().millis()) + ",hop=" +
                        std::to_string(w.hop().millis()) + ",off=" +
                        std::to_string(w.offset().millis());
      if (w.session_key().has_value()) {
        out += ",key=#" + std::to_string(*w.session_key());
      }
      out += "," + CanonNode(w.input()) + ")";
      return out;
    }
    case LogicalNode::Kind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      // Key order and call order both decide output column order and flush
      // order, so they stay order-sensitive.
      std::string out = "agg(keys=[";
      for (size_t i = 0; i < agg.keys().size(); ++i) {
        if (i > 0) out += ",";
        out += CanonExpr(*agg.keys()[i]);
      }
      out += "],et=[";
      for (size_t i = 0; i < agg.event_time_key_indexes().size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(agg.event_time_key_indexes()[i]);
      }
      out += "],calls=[";
      for (size_t i = 0; i < agg.aggs().size(); ++i) {
        const AggregateCall& call = agg.aggs()[i];
        if (i > 0) out += ",";
        out += AggFnToString(call.fn);
        if (call.distinct) out += " distinct";
        out += "(";
        if (call.arg != nullptr) out += CanonExpr(*call.arg);
        out += ")<";
        out += DataTypeToString(call.result_type);
        out += ">";
      }
      out += "]," + CanonNode(agg.input()) + ")";
      return out;
    }
    case LogicalNode::Kind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      // The residual condition keeps source order (short-circuit evaluation
      // order is not observable, but equi-key extraction order decides probe
      // key layout, so the conservative choice is to keep everything).
      std::string out =
          "join(type=" + std::to_string(static_cast<int>(join.join_type()));
      out += ",cond=";
      out += join.condition() != nullptr ? CanonExpr(*join.condition()) : "-";
      out += ",keys=[";
      for (size_t i = 0; i < join.equi_keys().size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(join.equi_keys()[i].first) + "=" +
               std::to_string(join.equi_keys()[i].second);
      }
      out += "]";
      auto purge = [&](const char* side,
                       const std::optional<JoinPurgeSpec>& spec) {
        out += ",";
        out += side;
        if (spec.has_value()) {
          out += "#" + std::to_string(spec->et_col) + "+" +
                 std::to_string(spec->slack.millis());
        } else {
          out += "-";
        }
      };
      purge("lp=", join.left_purge());
      purge("rp=", join.right_purge());
      out += "," + CanonNode(join.left()) + "," + CanonNode(join.right()) +
             ")";
      return out;
    }
  }
  return "?";
}

uint64_t Fnv1a64(const std::string& data, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string PlanFingerprint::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const uint64_t word = i < 8 ? hi : lo;
    const int shift = 60 - 8 * (i % 8);
    out[static_cast<size_t>(2 * i)] = kHex[(word >> shift) & 0xF];
    out[static_cast<size_t>(2 * i + 1)] = kHex[(word >> (shift - 4)) & 0xF];
  }
  return out;
}

PlanFingerprint FingerprintPlan(const QueryPlan& plan) {
  std::ostringstream text;
  text << "v1;" << CanonNode(*plan.root) << ";emit=";
  if (plan.emit.has_value()) {
    text << (plan.emit->stream ? "S" : "") << (plan.emit->after_watermark ? "W" : "");
    if (plan.emit->delay.has_value()) {
      text << "D" << plan.emit->delay->millis();
    }
  } else {
    text << "-";
  }
  text << ";order=[";
  for (size_t i = 0; i < plan.order_by.size(); ++i) {
    if (i > 0) text << ",";
    text << CanonExpr(*plan.order_by[i].first)
         << (plan.order_by[i].second ? " desc" : " asc");
  }
  text << "];limit=";
  if (plan.limit.has_value()) {
    text << *plan.limit;
  } else {
    text << "-";
  }
  text << ";lateness=" << plan.allowed_lateness.millis();
  text << ";complete=";
  if (plan.completeness_column.has_value()) {
    text << *plan.completeness_column;
  } else {
    text << "-";
  }
  text << ";verkey=[";
  for (size_t i = 0; i < plan.version_key_columns.size(); ++i) {
    if (i > 0) text << ",";
    text << plan.version_key_columns[i];
  }
  text << "]";

  PlanFingerprint fp;
  fp.canonical = text.str();
  fp.hi = Fnv1a64(fp.canonical, 0);
  fp.lo = Fnv1a64(fp.canonical, 0x9E3779B97F4A7C15ULL);
  return fp;
}

}  // namespace plan
}  // namespace onesql
