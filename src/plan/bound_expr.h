#ifndef ONESQL_PLAN_BOUND_EXPR_H_
#define ONESQL_PLAN_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace onesql {
namespace plan {

/// Scalar operations supported by the expression evaluator. Binary and unary
/// operators plus a few structured forms (CASE, CAST).
enum class ScalarOp {
  // Arithmetic (numeric, and timestamp/interval combinations).
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  // Comparisons (SQL ternary logic: NULL operand yields NULL).
  kEq, kNeq, kLt, kLe, kGt, kGe,
  // Boolean connectives (three-valued logic).
  kAnd, kOr, kNot,
  // NULL tests (always two-valued).
  kIsNull, kIsNotNull,
  // CASE WHEN c1 THEN r1 ... [ELSE e]: children alternate cond/result, with
  // an optional trailing ELSE child (children.size() odd).
  kCase,
  // CAST(child AS type): target type recorded in BoundExpr::type.
  kCast,
  // Scalar functions.
  kLower, kUpper, kCharLength,  // string
  kAbs, kFloor, kCeil,          // numeric
  kConcat,                      // n-ary string concatenation
  kCoalesce,                    // first non-NULL argument
};

const char* ScalarOpToString(ScalarOp op);

/// A bound (resolved + type-checked) scalar expression, evaluated positionally
/// against an input row. This is the executable form produced by the binder.
struct BoundExpr {
  enum class Kind { kLiteral, kInputRef, kOp };

  Kind kind = Kind::kLiteral;
  /// Result type of this expression.
  DataType type = DataType::kNull;

  // kLiteral:
  Value literal;
  // kInputRef:
  size_t input_index = 0;
  // kOp:
  ScalarOp op = ScalarOp::kAdd;
  std::vector<std::unique_ptr<BoundExpr>> children;

  static std::unique_ptr<BoundExpr> Literal(Value v);
  static std::unique_ptr<BoundExpr> InputRef(size_t index, DataType type);
  static std::unique_ptr<BoundExpr> Op(ScalarOp op, DataType result_type,
                                       std::vector<std::unique_ptr<BoundExpr>>
                                           children);

  /// Deep structural copy.
  std::unique_ptr<BoundExpr> Clone() const;

  /// "(#0 + INTERVAL 10m)"-style rendering for plan explanation.
  std::string ToString() const;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Deep structural equality (used to match SELECT expressions against
/// GROUP BY keys).
bool BoundExprEquals(const BoundExpr& a, const BoundExpr& b);

/// True if the expression (transitively) references any input column.
bool ReferencesInput(const BoundExpr& expr);

/// Collects the set of referenced input indexes into `out` (deduplicated,
/// sorted).
void CollectInputRefs(const BoundExpr& expr, std::vector<size_t>* out);

/// Rewrites every InputRef index through `mapping` (old index -> new index).
/// Indexes outside the mapping are shifted by `offset` instead when mapping
/// is empty. Used by optimizer rules when predicates move across operators.
void ShiftInputRefs(BoundExpr* expr, int64_t offset);

/// Aggregate functions (Extension 2 interacts with these via event-time
/// grouping keys).
enum class AggFn { kCountStar, kCount, kSum, kMin, kMax, kAvg };

const char* AggFnToString(AggFn fn);

/// A bound aggregate invocation within an Aggregate plan node.
struct AggregateCall {
  AggFn fn = AggFn::kCountStar;
  BoundExprPtr arg;  // nullptr for COUNT(*)
  bool distinct = false;
  DataType result_type = DataType::kBigint;

  AggregateCall Clone() const;
  std::string ToString() const;
};

/// Structural equality of aggregate calls (dedup within one Aggregate node).
bool AggregateCallEquals(const AggregateCall& a, const AggregateCall& b);

}  // namespace plan
}  // namespace onesql

#endif  // ONESQL_PLAN_BOUND_EXPR_H_
