#ifndef ONESQL_OBS_INSTRUMENTS_H_
#define ONESQL_OBS_INSTRUMENTS_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace onesql {
namespace obs {

/// Observability knobs. Everything is off by default; a default-constructed
/// engine carries no registry, no recorder, and every instrumentation site
/// reduces to one null-pointer test.
struct ObsOptions {
  bool metrics = false;  ///< Counters, gauges, histograms.
  bool tracing = false;  ///< Span recording into per-thread rings.
  size_t trace_ring_capacity = 4096;  ///< Retained spans per thread.
  /// Query-level profiling (DESIGN.md §15): per-operator wall-time sampling,
  /// batch-size histograms, kernel-path counters, and pipeline-stall
  /// attribution. Requires `metrics` (the profile is exported through the
  /// same registry); implied-off otherwise.
  bool profiling = false;
  /// Sampling period for the wall-clock operator timers: every Nth dispatch
  /// per operator instance is timed. Count-valued profile metrics (rows,
  /// batches, kernel paths) are never sampled. Clamped to >= 1.
  int profile_sample_every = 16;
};

// -- Typed instrument bundles ------------------------------------------------
//
// Components do not talk to the registry directly; they hold a const pointer
// to a pre-resolved bundle (null when metrics are off). The metric catalog —
// names and labels — therefore lives in exactly one place: ObsContext below.

/// Per-operator counters, shared by all shard copies of one chain position
/// (the sharded Counter absorbs the write contention), so totals match the
/// sequential run at any shard count.
struct OperatorMetrics {
  Counter* rows_in = nullptr;
  Counter* rows_out = nullptr;
  Counter* late_drops = nullptr;
  Gauge* state_bytes = nullptr;
};

/// Per-operator profile instruments (DESIGN.md §15), resolved only when
/// `ObsOptions::profiling` is on. Like OperatorMetrics, one bundle is shared
/// by every shard copy of a chain position, so count-valued fields sum to the
/// sequential totals at any shard count. Row-denominated counters (kernel
/// rows by path/reason) are shard-count-invariant; batch-denominated and
/// time-valued fields are not (sub-batch splitting differs by N).
struct OperatorProfileMetrics {
  Counter* batches = nullptr;        ///< ProcessBatch dispatches.
  Counter* elements = nullptr;       ///< Scalar ProcessElement dispatches.
  Histogram* batch_size = nullptr;   ///< Rows per dispatched batch.
  Histogram* wall_us = nullptr;      ///< Sampled per-dispatch wall time.
  Gauge* rows_per_sec = nullptr;     ///< rows_in / seconds since attach.
  Counter* vector_rows = nullptr;    ///< Rows through vectorized kernels.
  Counter* scalar_rows = nullptr;    ///< Rows through the scalar fallback.
  Counter* vector_batches = nullptr;
  Counter* scalar_batches = nullptr;
  /// Scalar-fallback rows by reason (shard-count-invariant: the reason
  /// depends only on the expression and lane kinds, which sub-batching
  /// preserves).
  Counter* fallback_demoted_lane = nullptr;
  Counter* fallback_division = nullptr;
  Counter* fallback_generic_lane = nullptr;
  Counter* fallback_unsupported = nullptr;
};

/// Per-query pipeline-stall attribution for the sharded runtime: where a
/// pushed batch waits (the epoch barrier closing the pipelined dispatch) and
/// how long the deterministic merge takes. Wall-clock valued; never
/// shard-count-invariant.
struct QueryProfileMetrics {
  Histogram* shard_wait_us = nullptr;  ///< Epoch-barrier wait per push.
  Histogram* merge_us = nullptr;       ///< Input-order merge per push.
  /// Deepest any shard's worker queue has been at dispatch time (tasks) —
  /// the backpressure signal of the pipelined runtime. Sampled at feed
  /// boundaries like every gauge.
  Gauge* shard_queue_high_water = nullptr;
};

/// Engine-level stall attribution: time a Feed spends blocked on the
/// write-ahead log (append + fsync) before dispatch.
struct EngineProfileMetrics {
  Histogram* feed_wal_stall_us = nullptr;  ///< WAL append+sync per feed.
  Histogram* feed_dispatch_us = nullptr;   ///< Query dispatch per feed.
};

/// Server-side sink fan-out attribution: time spent pushing changelog lines
/// to subscribers after a feed round.
struct ServerProfileMetrics {
  Histogram* fanout_us = nullptr;
};

/// Sink-side changelog and pane metrics for one query.
struct SinkMetrics {
  Counter* emissions = nullptr;     ///< Changelog entries materialized.
  Counter* inserts = nullptr;       ///< Non-undo entries.
  Counter* retractions = nullptr;   ///< Undo entries.
  Counter* late_drops = nullptr;    ///< Inputs past the lateness horizon.
  Counter* panes_early = nullptr;   ///< Speculative panes (AFTER DELAY ticks).
  Counter* panes_on_time = nullptr; ///< Completeness-driven panes.
  Counter* panes_late = nullptr;    ///< Corrections within allowed lateness.
  /// Event-time pane emit latency: emission ptime minus the watermark-passing
  /// ptime of the pane's window (deterministic, so tests can assert exact
  /// sums at any shard count).
  Histogram* emit_latency_ms = nullptr;
  Gauge* timer_queue_depth = nullptr;
  Gauge* pending_panes = nullptr;
  Gauge* snapshot_rows = nullptr;
};

/// Per-source feed metrics.
struct SourceMetrics {
  Counter* rows = nullptr;
  Counter* watermarks = nullptr;
  /// Watermark lag — feed ptime minus the source's current watermark —
  /// recorded per row event (histogram) and as the current value (gauge).
  Histogram* watermark_lag_ms = nullptr;
  Gauge* watermark_lag_current_ms = nullptr;
};

/// Write-ahead feed log metrics (wall-clock latencies, unlike the
/// event-time metrics above).
struct WalMetrics {
  Counter* appends = nullptr;
  Counter* syncs = nullptr;
  Counter* bytes_written = nullptr;
  Histogram* append_latency_us = nullptr;
  Histogram* sync_latency_us = nullptr;
  /// Group commit (DESIGN.md §16): records covered by each fsync, and how
  /// long a feeder blocked waiting for its group's commit. Zero-valued under
  /// the synchronous (non-group) WAL mode.
  Histogram* group_size = nullptr;
  Histogram* group_wait_us = nullptr;
};

/// Engine-level feed and checkpoint metrics.
struct EngineMetrics {
  Counter* feed_inserts = nullptr;
  Counter* feed_deletes = nullptr;
  Counter* feed_watermarks = nullptr;
  Counter* checkpoint_saves = nullptr;
  Counter* checkpoint_restores = nullptr;
  Histogram* checkpoint_save_ms = nullptr;
  Histogram* checkpoint_restore_ms = nullptr;
  Gauge* checkpoint_bytes = nullptr;
  Gauge* queries = nullptr;
  /// Live operator instances across all running queries (chains × shards +
  /// sinks). The multi-tenant sharing tests assert on this: 10k subscribers
  /// behind one shared plan must not move it.
  Gauge* operators = nullptr;
};

/// Standing-query server totals (DESIGN.md §13).
struct ServerMetrics {
  Gauge* sessions = nullptr;          ///< Open sessions.
  Gauge* standing_queries = nullptr;  ///< Live engine queries behind the cache.
  Gauge* subscriptions = nullptr;     ///< Active changelog subscriptions.
  Counter* commands = nullptr;        ///< Wire commands handled.
  Counter* command_errors = nullptr;  ///< Commands answered with an error.
  Counter* deltas_pushed = nullptr;   ///< Changelog lines fanned out.
  Counter* shared_hits = nullptr;     ///< Submits routed onto a running plan.
  Counter* sessions_opened = nullptr;
  Counter* sessions_overflowed = nullptr;  ///< Slow subscribers dropped.
};

/// Per-session server metrics (label: session="s<id>").
struct SessionMetrics {
  Counter* commands = nullptr;
  Counter* deltas_pushed = nullptr;
  Gauge* queue_depth = nullptr;  ///< Outbound lines awaiting the socket.
};

/// Per-shared-plan fan-out metrics (label: plan="p<qid>").
struct SharedPlanMetrics {
  Gauge* subscribers = nullptr;
  Counter* deltas_pushed = nullptr;
};

/// One engine's observability state: the registry, the trace recorder, and
/// the resolved instrument bundles. The context owns the bundles; components
/// borrow const pointers, so attaching observability never changes component
/// lifetimes. All Get* methods return nullptr when metrics are disabled.
class ObsContext {
 public:
  explicit ObsContext(const ObsOptions& options)
      : options_(options),
        registry_(options.metrics ? std::make_unique<MetricsRegistry>()
                                  : nullptr),
        trace_(options.tracing ? std::make_unique<TraceRecorder>(
                                     options.trace_ring_capacity)
                               : nullptr) {}

  const ObsOptions& options() const { return options_; }
  MetricsRegistry* registry() { return registry_.get(); }
  TraceRecorder* trace() { return trace_.get(); }

  /// True when the profiling factories hand out real bundles.
  bool profiling_enabled() const {
    return registry_ != nullptr && options_.profiling;
  }
  /// Sampling period for operator wall-clock timers (>= 1).
  int profile_sample_every() const {
    return options_.profile_sample_every < 1 ? 1
                                             : options_.profile_sample_every;
  }

  /// Bundle factories; cached per key, so repeated calls (e.g. a query
  /// rebuilt by Restore) return the same instruments.
  const OperatorMetrics* ForOperator(const std::string& query,
                                     const std::string& op);
  /// Profiling bundles return nullptr unless `profiling_enabled()`.
  const OperatorProfileMetrics* ForOperatorProfile(const std::string& query,
                                                   const std::string& op);
  const QueryProfileMetrics* ForQueryProfile(const std::string& query);
  const EngineProfileMetrics* ForEngineProfile();
  const ServerProfileMetrics* ForServerProfile();
  const SinkMetrics* ForSink(const std::string& query);
  const SourceMetrics* ForSource(const std::string& source);
  const WalMetrics* ForWal();
  const EngineMetrics* ForEngine();
  const ServerMetrics* ForServer();
  const SessionMetrics* ForSession(const std::string& session);
  const SharedPlanMetrics* ForSharedPlan(const std::string& plan);

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<TraceRecorder> trace_;

  std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<OperatorMetrics>>>
      operator_bundles_;
  std::vector<std::pair<std::string, std::unique_ptr<OperatorProfileMetrics>>>
      operator_profile_bundles_;
  std::vector<std::pair<std::string, std::unique_ptr<QueryProfileMetrics>>>
      query_profile_bundles_;
  std::vector<std::pair<std::string, std::unique_ptr<SinkMetrics>>>
      sink_bundles_;
  std::vector<std::pair<std::string, std::unique_ptr<SourceMetrics>>>
      source_bundles_;
  std::vector<std::pair<std::string, std::unique_ptr<SessionMetrics>>>
      session_bundles_;
  std::vector<std::pair<std::string, std::unique_ptr<SharedPlanMetrics>>>
      shared_plan_bundles_;
  std::unique_ptr<WalMetrics> wal_bundle_;
  std::unique_ptr<EngineMetrics> engine_bundle_;
  std::unique_ptr<EngineProfileMetrics> engine_profile_bundle_;
  std::unique_ptr<ServerMetrics> server_bundle_;
  std::unique_ptr<ServerProfileMetrics> server_profile_bundle_;
};

}  // namespace obs
}  // namespace onesql

#endif  // ONESQL_OBS_INSTRUMENTS_H_
