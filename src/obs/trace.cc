#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace onesql {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};
std::atomic<uint32_t> g_next_tid{1};

uint32_t ThisThreadTid() {
  thread_local uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t ring_capacity)
    : ring_capacity_(ring_capacity < 16 ? 16 : ring_capacity),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

uint64_t TraceRecorder::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  // One-entry TLS cache: (recorder id, ring). Recorder ids are process-unique
  // and never reused, so a stale cache entry can only miss, never alias.
  struct TlsCache {
    uint64_t recorder_id = 0;
    Ring* ring = nullptr;
  };
  thread_local TlsCache cache;
  if (cache.recorder_id == id_ && cache.ring != nullptr) return cache.ring;

  uint32_t tid = ThisThreadTid();
  std::lock_guard<std::mutex> lock(mu_);
  // A thread that bounced between recorders re-finds its ring by tid rather
  // than registering a duplicate.
  for (const std::unique_ptr<Ring>& r : rings_) {
    if (r->tid == tid) {
      cache = {id_, r.get()};
      return cache.ring;
    }
  }
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  rings_.back()->tid = tid;
  cache = {id_, rings_.back().get()};
  return cache.ring;
}

void TraceRecorder::Record(const TraceEvent& event) {
  Ring* ring = RingForThisThread();
  // Only this thread writes this ring, so the head load can be relaxed; the
  // store is release so a drainer that acquires the head sees the slot.
  uint64_t head = ring->head.load(std::memory_order_relaxed);
  if (head >= ring->slots.size()) {
    // Wrapping: the slot we are about to reuse still holds a retained span.
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  Slot& slot = ring->slots[head % ring->slots.size()];
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.category.store(event.category, std::memory_order_relaxed);
  slot.ts_us.store(event.ts_us, std::memory_order_relaxed);
  slot.dur_us.store(event.dur_us, std::memory_order_relaxed);
  slot.aux.store(event.aux, std::memory_order_relaxed);
  slot.query.store(event.query, std::memory_order_relaxed);
  slot.shard.store(event.shard, std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Drain() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t count = std::min<uint64_t>(head, ring->slots.size());
    for (uint64_t i = head - count; i < head; ++i) {
      const Slot& slot = ring->slots[i % ring->slots.size()];
      TraceEvent ev;
      ev.name = slot.name.load(std::memory_order_relaxed);
      ev.category = slot.category.load(std::memory_order_relaxed);
      ev.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      ev.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      ev.aux = slot.aux.load(std::memory_order_relaxed);
      ev.query = slot.query.load(std::memory_order_relaxed);
      ev.shard = slot.shard.load(std::memory_order_relaxed);
      ev.tid = ring->tid;
      if (ev.name != nullptr) out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.tid < b.tid;
  });
  return out;
}

std::string TraceRecorder::DumpChromeJson() const {
  std::vector<TraceEvent> events = Drain();
  std::string out = "[";
  bool first = true;
  // Metadata event first so ring truncation is visible in the viewer: how
  // many spans were recorded in total and how many wraparound discarded.
  // Omitted while nothing has been recorded, so an idle dump stays "[]".
  if (recorded() > 0) {
    out +=
        "\n{\"name\":\"trace_stats\",\"cat\":\"meta\",\"ph\":\"i\",\"pid\":1,"
        "\"tid\":0,\"ts\":0,\"s\":\"g\",\"args\":{\"recorded\":";
    out += std::to_string(recorded());
    out += ",\"dropped\":";
    out += std::to_string(dropped());
    out += "}}";
    first = false;
  }
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += ev.name;
    out += "\",\"cat\":\"";
    out += ev.category != nullptr ? ev.category : "engine";
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    out += std::to_string(ev.ts_us);
    out += ",\"dur\":";
    out += std::to_string(ev.dur_us);
    out += ",\"args\":{\"query\":";
    out += std::to_string(ev.query);
    out += ",\"shard\":";
    out += std::to_string(ev.shard);
    out += ",\"aux\":";
    out += std::to_string(ev.aux);
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace obs
}  // namespace onesql
