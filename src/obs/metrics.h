#ifndef ONESQL_OBS_METRICS_H_
#define ONESQL_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace onesql {
namespace obs {

/// Label set attached to an instrument, e.g. {{"query","q0"},{"op","agg"}}.
/// Stored sorted by key so the same set always renders the same way.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical `{k="v",k2="v2"}` rendering (empty string for no labels).
std::string RenderLabels(const Labels& labels);

/// A monotonically increasing counter. The hot path (Add) is sharded across
/// cache-line-aligned atomic slots indexed by a thread-local slot id, so
/// concurrent shard workers bumping the same logical counter never contend
/// on one cache line. Value() sums the slots (monotone but not atomic as a
/// whole — exact once writers are quiescent, which is when snapshots are
/// taken).
class Counter {
 public:
  static constexpr size_t kSlots = 16;

  void Add(uint64_t delta) {
    slots_[SlotIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  static size_t SlotIndex();
  Slot slots_[kSlots];
};

/// A last-write-wins instantaneous value (state bytes, queue depth,
/// watermark lag). Signed: gauges may legitimately go negative.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Aggregated histogram contents, detached from the live atomics: bucket i
/// counts recorded values v with BucketOf(v) == i, i.e. bucket 0 holds v == 0
/// and bucket i >= 1 holds 2^(i-1) <= v < 2^i. `sum` is the exact sum of all
/// recorded values.
struct HistogramData {
  static constexpr size_t kBuckets = 64;

  uint64_t counts[kBuckets] = {0};
  uint64_t sum = 0;

  uint64_t TotalCount() const;

  /// Upper edge of bucket `i` (the Prometheus `le` boundary): 0 for bucket 0,
  /// otherwise 2^i - 1 ... represented as 2^i's predecessor; we use the
  /// inclusive upper bound 2^i - 1 so `le` boundaries are exact integers.
  static uint64_t BucketUpperBound(size_t i);

  /// Value below which `pct` percent (0..100) of recorded samples fall,
  /// resolved to the containing bucket's upper bound. 0 when empty.
  uint64_t Percentile(double pct) const;

  void Merge(const HistogramData& other);
};

/// A fixed-layout exponential histogram for non-negative integer samples
/// (latencies in ms/us, sizes in bytes). 64 power-of-two buckets cover the
/// full uint64 range with no configuration; Record is two relaxed atomic
/// adds, so the hot path is lock-free and allocation-free.
class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramData::kBuckets;

  /// Bucket index for value `v`: 0 for v == 0, else bit_width(v) (1..63).
  static size_t BucketOf(uint64_t v) {
    if (v == 0) return 0;
    size_t width = 64 - static_cast<size_t>(__builtin_clzll(v));
    return width > kBuckets - 1 ? kBuckets - 1 : width;
  }

  void Record(uint64_t v) {
    counts_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramData Data() const {
    HistogramData d;
    for (size_t i = 0; i < kBuckets; ++i) {
      d.counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    d.sum = sum_.load(std::memory_order_relaxed);
    return d;
  }

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// -- Snapshot ---------------------------------------------------------------

struct CounterSample {
  std::string name;
  Labels labels;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  HistogramData data;
};

/// A point-in-time copy of every registered instrument, sorted by
/// (name, labels) so renderings are deterministic. This is the typed struct
/// `Engine::MetricsSnapshot()` returns; the exposition formats (Prometheus
/// text, JSON) are derived from it and carry exactly the same values.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers; a missing instrument reads as 0 / nullptr.
  uint64_t CounterValue(std::string_view name, const Labels& labels = {}) const;
  int64_t GaugeValue(std::string_view name, const Labels& labels = {}) const;
  const HistogramData* HistogramOf(std::string_view name,
                                   const Labels& labels = {}) const;

  /// Prometheus text exposition format (one # TYPE line per metric family;
  /// histograms render cumulative `_bucket{le=...}` series plus _sum/_count).
  std::string ToPrometheus() const;

  /// JSON rendering with the same values: {"counters":[...],"gauges":[...],
  /// "histograms":[...]}.
  std::string ToJson() const;
};

// -- Registry ---------------------------------------------------------------

/// Owns every instrument. Get* registers on first use and returns the same
/// pointer for the same (name, labels) afterwards, so independent components
/// (e.g. the N shard copies of one operator chain) share one instrument.
/// Registration takes a mutex; the returned instruments are the lock-free
/// hot path. Instruments live as long as the registry.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  static T* GetOrCreate(std::vector<Entry<T>>* entries, const std::string& name,
                        const Labels& labels);

  mutable std::mutex mu_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace onesql

#endif  // ONESQL_OBS_METRICS_H_
