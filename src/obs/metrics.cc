#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace onesql {
namespace obs {

namespace {

/// Stable per-thread slot id: threads are striped round-robin across counter
/// slots, so any fixed set of worker threads lands on distinct slots until
/// the slot count is exceeded.
std::atomic<size_t> g_next_thread_stripe{0};

size_t ThreadStripe() {
  thread_local size_t stripe =
      g_next_thread_stripe.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

bool LabelsEqual(const Labels& a, const Labels& b) { return a == b; }

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

size_t Counter::SlotIndex() { return ThreadStripe() % kSlots; }

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {  // escape per the Prometheus text format
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

uint64_t HistogramData::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

uint64_t HistogramData::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << i) - 1;
}

uint64_t HistogramData::Percentile(double pct) const {
  uint64_t total = TotalCount();
  if (total == 0) return 0;
  if (pct < 0) pct = 0;
  if (pct > 100) pct = 100;
  // Rank of the target sample, 1-based: ceil(pct/100 * total), at least 1.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

void HistogramData::Merge(const HistogramData& other) {
  for (size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  sum += other.sum;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::vector<Entry<T>>* entries,
                                const std::string& name, const Labels& labels) {
  Labels sorted = SortedLabels(labels);
  for (Entry<T>& e : *entries) {
    if (e.name == name && LabelsEqual(e.labels, sorted)) {
      return e.instrument.get();
    }
  }
  entries->push_back(Entry<T>{name, std::move(sorted), std::make_unique<T>()});
  return entries->back().instrument.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&gauges_, name, labels);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&histograms_, name, labels);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry<Counter>& e : counters_) {
      snap.counters.push_back({e.name, e.labels, e.instrument->Value()});
    }
    for (const Entry<Gauge>& e : gauges_) {
      snap.gauges.push_back({e.name, e.labels, e.instrument->Value()});
    }
    for (const Entry<Histogram>& e : histograms_) {
      snap.histograms.push_back({e.name, e.labels, e.instrument->Data()});
    }
  }
  auto by_name_labels = [](const auto& a, const auto& b) {
    if (a.name != b.name) return a.name < b.name;
    return RenderLabels(a.labels) < RenderLabels(b.labels);
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name_labels);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name_labels);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name_labels);
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name,
                                       const Labels& labels) const {
  Labels sorted = SortedLabels(labels);
  for (const CounterSample& s : counters) {
    if (s.name == name && LabelsEqual(s.labels, sorted)) return s.value;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name,
                                    const Labels& labels) const {
  Labels sorted = SortedLabels(labels);
  for (const GaugeSample& s : gauges) {
    if (s.name == name && LabelsEqual(s.labels, sorted)) return s.value;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::HistogramOf(std::string_view name,
                                                  const Labels& labels) const {
  Labels sorted = SortedLabels(labels);
  for (const HistogramSample& s : histograms) {
    if (s.name == name && LabelsEqual(s.labels, sorted)) return &s.data;
  }
  return nullptr;
}

}  // namespace obs
}  // namespace onesql
