#include <string>

#include "obs/metrics.h"

namespace onesql {
namespace obs {

namespace {

/// Prometheus-style label rendering with an extra `le` label appended (for
/// histogram bucket series).
std::string RenderLabelsWithLe(const Labels& labels, const std::string& le) {
  Labels with_le = labels;
  with_le.emplace_back("le", le);
  return RenderLabels(with_le);
}

void AppendJsonString(std::string* out, std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        // Remaining control characters (including \b, \f) must be \u-escaped
        // or the output is not JSON — hostile query names reach this path via
        // the {query=...} label.
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += "\\u00";
          *out += kHex[(c >> 4) & 0xf];
          *out += kHex[c & 0xf];
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendJsonLabels(std::string* out, const Labels& labels) {
  *out += "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, k);
    *out += ":";
    AppendJsonString(out, v);
  }
  *out += "}";
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  std::string last_family;
  for (const CounterSample& s : counters) {
    if (s.name != last_family) {
      out += "# TYPE " + s.name + " counter\n";
      last_family = s.name;
    }
    out += s.name + RenderLabels(s.labels) + " " + std::to_string(s.value) +
           "\n";
  }
  last_family.clear();
  for (const GaugeSample& s : gauges) {
    if (s.name != last_family) {
      out += "# TYPE " + s.name + " gauge\n";
      last_family = s.name;
    }
    out += s.name + RenderLabels(s.labels) + " " + std::to_string(s.value) +
           "\n";
  }
  last_family.clear();
  for (const HistogramSample& s : histograms) {
    if (s.name != last_family) {
      out += "# TYPE " + s.name + " histogram\n";
      last_family = s.name;
    }
    // Cumulative buckets; empty interior buckets are skipped (their
    // cumulative value is carried by the next non-empty boundary), keeping
    // the exposition proportional to the data rather than the bucket layout.
    uint64_t cumulative = 0;
    for (size_t i = 0; i + 1 < HistogramData::kBuckets; ++i) {
      if (s.data.counts[i] == 0) continue;
      cumulative += s.data.counts[i];
      out += s.name + "_bucket" +
             RenderLabelsWithLe(
                 s.labels,
                 std::to_string(HistogramData::BucketUpperBound(i))) +
             " " + std::to_string(cumulative) + "\n";
    }
    // The +Inf bucket (which also absorbs the histogram's last slot) always
    // carries the total count, as the format requires.
    const uint64_t total = s.data.TotalCount();
    out += s.name + "_bucket" + RenderLabelsWithLe(s.labels, "+Inf") + " " +
           std::to_string(total) + "\n";
    out += s.name + "_sum" + RenderLabels(s.labels) + " " +
           std::to_string(s.data.sum) + "\n";
    out += s.name + "_count" + RenderLabels(s.labels) + " " +
           std::to_string(total) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n\"counters\":[";
  bool first = true;
  for (const CounterSample& s : counters) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"labels\":";
    AppendJsonLabels(&out, s.labels);
    out += ",\"value\":" + std::to_string(s.value) + "}";
  }
  out += "],\n\"gauges\":[";
  first = true;
  for (const GaugeSample& s : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"labels\":";
    AppendJsonLabels(&out, s.labels);
    out += ",\"value\":" + std::to_string(s.value) + "}";
  }
  out += "],\n\"histograms\":[";
  first = true;
  for (const HistogramSample& s : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"labels\":";
    AppendJsonLabels(&out, s.labels);
    out += ",\"count\":" + std::to_string(s.data.TotalCount());
    out += ",\"sum\":" + std::to_string(s.data.sum);
    out += ",\"p50\":" + std::to_string(s.data.Percentile(50));
    out += ",\"p95\":" + std::to_string(s.data.Percentile(95));
    out += ",\"p99\":" + std::to_string(s.data.Percentile(99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
      if (s.data.counts[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      const std::string le =
          i + 1 >= HistogramData::kBuckets
              ? "\"+Inf\""
              : std::to_string(HistogramData::BucketUpperBound(i));
      out += "{\"le\":" + le +
             ",\"count\":" + std::to_string(s.data.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace obs
}  // namespace onesql
