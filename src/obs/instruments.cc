#include "obs/instruments.h"

namespace onesql {
namespace obs {

// The metric catalog. Every metric the engine exports is named here, in one
// place, following the `onesql_<subsystem>_<name>{labels}` convention
// documented in DESIGN.md §11.

const OperatorMetrics* ObsContext::ForOperator(const std::string& query,
                                               const std::string& op) {
  if (registry_ == nullptr) return nullptr;
  const std::string key = query + '\0' + op;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : operator_bundles_) {
    if (k == key) return bundle.get();
  }
  Labels labels = {{"query", query}, {"op", op}};
  auto bundle = std::make_unique<OperatorMetrics>();
  bundle->rows_in = registry_->GetCounter("onesql_operator_rows_in_total",
                                          labels);
  bundle->rows_out = registry_->GetCounter("onesql_operator_rows_out_total",
                                           labels);
  bundle->late_drops =
      registry_->GetCounter("onesql_operator_late_drops_total", labels);
  bundle->state_bytes =
      registry_->GetGauge("onesql_operator_state_bytes", labels);
  operator_bundles_.emplace_back(key, std::move(bundle));
  return operator_bundles_.back().second.get();
}

const OperatorProfileMetrics* ObsContext::ForOperatorProfile(
    const std::string& query, const std::string& op) {
  if (!profiling_enabled()) return nullptr;
  const std::string key = query + '\0' + op;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : operator_profile_bundles_) {
    if (k == key) return bundle.get();
  }
  Labels labels = {{"query", query}, {"op", op}};
  auto bundle = std::make_unique<OperatorProfileMetrics>();
  bundle->batches =
      registry_->GetCounter("onesql_profile_batches_total", labels);
  bundle->elements =
      registry_->GetCounter("onesql_profile_elements_total", labels);
  bundle->batch_size =
      registry_->GetHistogram("onesql_profile_batch_size", labels);
  bundle->wall_us =
      registry_->GetHistogram("onesql_profile_batch_wall_us", labels);
  bundle->rows_per_sec =
      registry_->GetGauge("onesql_profile_rows_per_sec", labels);
  bundle->vector_rows = registry_->GetCounter(
      "onesql_kernel_rows_total",
      {{"query", query}, {"op", op}, {"path", "vectorized"}});
  bundle->scalar_rows = registry_->GetCounter(
      "onesql_kernel_rows_total",
      {{"query", query}, {"op", op}, {"path", "scalar"}});
  bundle->vector_batches = registry_->GetCounter(
      "onesql_kernel_batches_total",
      {{"query", query}, {"op", op}, {"path", "vectorized"}});
  bundle->scalar_batches = registry_->GetCounter(
      "onesql_kernel_batches_total",
      {{"query", query}, {"op", op}, {"path", "scalar"}});
  bundle->fallback_demoted_lane = registry_->GetCounter(
      "onesql_kernel_fallback_rows_total",
      {{"query", query}, {"op", op}, {"reason", "demoted_lane"}});
  bundle->fallback_division = registry_->GetCounter(
      "onesql_kernel_fallback_rows_total",
      {{"query", query}, {"op", op}, {"reason", "division"}});
  bundle->fallback_generic_lane = registry_->GetCounter(
      "onesql_kernel_fallback_rows_total",
      {{"query", query}, {"op", op}, {"reason", "generic_lane"}});
  bundle->fallback_unsupported = registry_->GetCounter(
      "onesql_kernel_fallback_rows_total",
      {{"query", query}, {"op", op}, {"reason", "unsupported"}});
  operator_profile_bundles_.emplace_back(key, std::move(bundle));
  return operator_profile_bundles_.back().second.get();
}

const QueryProfileMetrics* ObsContext::ForQueryProfile(
    const std::string& query) {
  if (!profiling_enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : query_profile_bundles_) {
    if (k == query) return bundle.get();
  }
  Labels labels = {{"query", query}};
  auto bundle = std::make_unique<QueryProfileMetrics>();
  bundle->shard_wait_us =
      registry_->GetHistogram("onesql_profile_shard_wait_us", labels);
  bundle->merge_us =
      registry_->GetHistogram("onesql_profile_merge_us", labels);
  bundle->shard_queue_high_water =
      registry_->GetGauge("onesql_profile_shard_queue_high_water", labels);
  query_profile_bundles_.emplace_back(query, std::move(bundle));
  return query_profile_bundles_.back().second.get();
}

const EngineProfileMetrics* ObsContext::ForEngineProfile() {
  if (!profiling_enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_profile_bundle_ == nullptr) {
    engine_profile_bundle_ = std::make_unique<EngineProfileMetrics>();
    engine_profile_bundle_->feed_wal_stall_us =
        registry_->GetHistogram("onesql_profile_feed_wal_stall_us");
    engine_profile_bundle_->feed_dispatch_us =
        registry_->GetHistogram("onesql_profile_feed_dispatch_us");
  }
  return engine_profile_bundle_.get();
}

const ServerProfileMetrics* ObsContext::ForServerProfile() {
  if (!profiling_enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (server_profile_bundle_ == nullptr) {
    server_profile_bundle_ = std::make_unique<ServerProfileMetrics>();
    server_profile_bundle_->fanout_us =
        registry_->GetHistogram("onesql_profile_server_fanout_us");
  }
  return server_profile_bundle_.get();
}

const SinkMetrics* ObsContext::ForSink(const std::string& query) {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : sink_bundles_) {
    if (k == query) return bundle.get();
  }
  Labels labels = {{"query", query}};
  auto bundle = std::make_unique<SinkMetrics>();
  bundle->emissions =
      registry_->GetCounter("onesql_sink_emissions_total", labels);
  bundle->inserts = registry_->GetCounter("onesql_sink_inserts_total", labels);
  bundle->retractions =
      registry_->GetCounter("onesql_sink_retractions_total", labels);
  bundle->late_drops =
      registry_->GetCounter("onesql_sink_late_drops_total", labels);
  bundle->panes_early = registry_->GetCounter(
      "onesql_sink_panes_total", {{"query", query}, {"kind", "early"}});
  bundle->panes_on_time = registry_->GetCounter(
      "onesql_sink_panes_total", {{"query", query}, {"kind", "on_time"}});
  bundle->panes_late = registry_->GetCounter(
      "onesql_sink_panes_total", {{"query", query}, {"kind", "late"}});
  bundle->emit_latency_ms =
      registry_->GetHistogram("onesql_sink_emit_latency_ms", labels);
  bundle->timer_queue_depth =
      registry_->GetGauge("onesql_sink_timer_queue_depth", labels);
  bundle->pending_panes =
      registry_->GetGauge("onesql_sink_pending_panes", labels);
  bundle->snapshot_rows =
      registry_->GetGauge("onesql_sink_snapshot_rows", labels);
  sink_bundles_.emplace_back(query, std::move(bundle));
  return sink_bundles_.back().second.get();
}

const SourceMetrics* ObsContext::ForSource(const std::string& source) {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : source_bundles_) {
    if (k == source) return bundle.get();
  }
  Labels labels = {{"source", source}};
  auto bundle = std::make_unique<SourceMetrics>();
  bundle->rows = registry_->GetCounter("onesql_source_rows_total", labels);
  bundle->watermarks =
      registry_->GetCounter("onesql_source_watermarks_total", labels);
  bundle->watermark_lag_ms =
      registry_->GetHistogram("onesql_source_watermark_lag_ms", labels);
  bundle->watermark_lag_current_ms =
      registry_->GetGauge("onesql_source_watermark_lag_current_ms", labels);
  source_bundles_.emplace_back(source, std::move(bundle));
  return source_bundles_.back().second.get();
}

const WalMetrics* ObsContext::ForWal() {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_bundle_ == nullptr) {
    wal_bundle_ = std::make_unique<WalMetrics>();
    wal_bundle_->appends = registry_->GetCounter("onesql_wal_appends_total");
    wal_bundle_->syncs = registry_->GetCounter("onesql_wal_syncs_total");
    wal_bundle_->bytes_written =
        registry_->GetCounter("onesql_wal_bytes_written_total");
    wal_bundle_->append_latency_us =
        registry_->GetHistogram("onesql_wal_append_latency_us");
    wal_bundle_->sync_latency_us =
        registry_->GetHistogram("onesql_wal_sync_latency_us");
    wal_bundle_->group_size =
        registry_->GetHistogram("onesql_wal_group_size");
    wal_bundle_->group_wait_us =
        registry_->GetHistogram("onesql_wal_group_wait_us");
  }
  return wal_bundle_.get();
}

const EngineMetrics* ObsContext::ForEngine() {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_bundle_ == nullptr) {
    engine_bundle_ = std::make_unique<EngineMetrics>();
    engine_bundle_->feed_inserts = registry_->GetCounter(
        "onesql_engine_feed_events_total", {{"kind", "insert"}});
    engine_bundle_->feed_deletes = registry_->GetCounter(
        "onesql_engine_feed_events_total", {{"kind", "delete"}});
    engine_bundle_->feed_watermarks = registry_->GetCounter(
        "onesql_engine_feed_events_total", {{"kind", "watermark"}});
    engine_bundle_->checkpoint_saves =
        registry_->GetCounter("onesql_checkpoint_saves_total");
    engine_bundle_->checkpoint_restores =
        registry_->GetCounter("onesql_checkpoint_restores_total");
    engine_bundle_->checkpoint_save_ms =
        registry_->GetHistogram("onesql_checkpoint_save_duration_ms");
    engine_bundle_->checkpoint_restore_ms =
        registry_->GetHistogram("onesql_checkpoint_restore_duration_ms");
    engine_bundle_->checkpoint_bytes =
        registry_->GetGauge("onesql_checkpoint_bytes");
    engine_bundle_->queries = registry_->GetGauge("onesql_engine_queries");
    engine_bundle_->operators = registry_->GetGauge("onesql_engine_operators");
  }
  return engine_bundle_.get();
}

const ServerMetrics* ObsContext::ForServer() {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (server_bundle_ == nullptr) {
    server_bundle_ = std::make_unique<ServerMetrics>();
    server_bundle_->sessions = registry_->GetGauge("onesql_server_sessions");
    server_bundle_->standing_queries =
        registry_->GetGauge("onesql_server_standing_queries");
    server_bundle_->subscriptions =
        registry_->GetGauge("onesql_server_subscriptions");
    server_bundle_->commands =
        registry_->GetCounter("onesql_server_commands_total");
    server_bundle_->command_errors =
        registry_->GetCounter("onesql_server_command_errors_total");
    server_bundle_->deltas_pushed =
        registry_->GetCounter("onesql_server_deltas_pushed_total");
    server_bundle_->shared_hits =
        registry_->GetCounter("onesql_server_shared_plan_hits_total");
    server_bundle_->sessions_opened =
        registry_->GetCounter("onesql_server_sessions_opened_total");
    server_bundle_->sessions_overflowed =
        registry_->GetCounter("onesql_server_sessions_overflowed_total");
  }
  return server_bundle_.get();
}

const SessionMetrics* ObsContext::ForSession(const std::string& session) {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : session_bundles_) {
    if (k == session) return bundle.get();
  }
  Labels labels = {{"session", session}};
  auto bundle = std::make_unique<SessionMetrics>();
  bundle->commands =
      registry_->GetCounter("onesql_session_commands_total", labels);
  bundle->deltas_pushed =
      registry_->GetCounter("onesql_session_deltas_pushed_total", labels);
  bundle->queue_depth =
      registry_->GetGauge("onesql_session_queue_depth", labels);
  session_bundles_.emplace_back(session, std::move(bundle));
  return session_bundles_.back().second.get();
}

const SharedPlanMetrics* ObsContext::ForSharedPlan(const std::string& plan) {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, bundle] : shared_plan_bundles_) {
    if (k == plan) return bundle.get();
  }
  Labels labels = {{"plan", plan}};
  auto bundle = std::make_unique<SharedPlanMetrics>();
  bundle->subscribers =
      registry_->GetGauge("onesql_shared_plan_subscribers", labels);
  bundle->deltas_pushed =
      registry_->GetCounter("onesql_shared_plan_deltas_pushed_total", labels);
  shared_plan_bundles_.emplace_back(plan, std::move(bundle));
  return shared_plan_bundles_.back().second.get();
}

}  // namespace obs
}  // namespace onesql
