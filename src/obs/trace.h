#ifndef ONESQL_OBS_TRACE_H_
#define ONESQL_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace onesql {
namespace obs {

/// One completed span. `name` and `category` must be string literals (or
/// otherwise outlive the recorder): the ring stores the pointers, not copies,
/// so recording stays allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t ts_us = 0;   ///< Start, microseconds on the steady clock.
  uint64_t dur_us = 0;  ///< Duration in microseconds.
  uint32_t tid = 0;     ///< Recorder-assigned small thread id.
  int32_t query = -1;   ///< Query index tag, -1 when not applicable.
  int32_t shard = -1;   ///< Shard tag, -1 when not applicable.
  uint64_t aux = 0;     ///< Free-form payload (batch size, bytes, ...).
};

/// Lock-free structured tracing: each thread records completed spans into its
/// own fixed-capacity ring buffer, overwriting the oldest entries when full.
/// Recording is a handful of relaxed atomic stores plus one release store of
/// the ring head — no locks, no allocation — so it is safe from the sharded
/// runtime's worker threads and TSan-clean by construction. Draining (for the
/// Chrome trace dump) reads the rings with acquire loads; exact contents are
/// guaranteed when writers are quiescent, which is when dumps are taken.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t ring_capacity = 4096);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(const TraceEvent& event);

  /// All retained events across every thread's ring, oldest first per thread.
  std::vector<TraceEvent> Drain() const;

  /// Chrome `trace_event` JSON (load via chrome://tracing or Perfetto):
  /// an array of "ph":"X" complete events with query/shard/aux args.
  std::string DumpChromeJson() const;

  /// Total events recorded (including ones overwritten in the rings).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Spans lost to ring wraparound: each Record() into a full ring overwrites
  /// the oldest retained span, and that overwrite is counted here. Exposed in
  /// both expositions (gauge) and in the Chrome trace dump metadata so a
  /// truncated profile is visible instead of silently partial.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Microseconds on the steady clock (the span timebase).
  static uint64_t NowMicros();

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> category{nullptr};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> dur_us{0};
    std::atomic<uint64_t> aux{0};
    std::atomic<int32_t> query{-1};
    std::atomic<int32_t> shard{-1};
  };

  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::atomic<uint64_t> head{0};  ///< Next write position (monotonic).
    uint32_t tid = 0;
    std::vector<Slot> slots;
  };

  Ring* RingForThisThread();

  const size_t ring_capacity_;
  const uint64_t id_;  ///< Process-unique recorder id for the TLS cache.
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;  ///< Guards ring registration only.
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: records a TraceEvent covering its own lifetime into `recorder`
/// on destruction. A null recorder makes the whole object a no-op, which is
/// the disabled-tracing fast path (one pointer test per span site).
class Span {
 public:
  Span(TraceRecorder* recorder, const char* name,
       const char* category = "engine", int32_t query = -1, int32_t shard = -1)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.query = query;
    event_.shard = shard;
    event_.ts_us = TraceRecorder::NowMicros();
  }

  ~Span() {
    if (recorder_ == nullptr) return;
    event_.dur_us = TraceRecorder::NowMicros() - event_.ts_us;
    recorder_->Record(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a free-form numeric payload (batch size, bytes written, ...).
  void set_aux(uint64_t aux) { event_.aux = aux; }

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace onesql

#endif  // ONESQL_OBS_TRACE_H_
