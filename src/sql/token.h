#ifndef ONESQL_SQL_TOKEN_H_
#define ONESQL_SQL_TOKEN_H_

#include <string>

namespace onesql {
namespace sql {

/// Lexical token categories. Keywords are recognized case-insensitively and
/// reported as kKeyword with the upper-cased text in `text`.
enum class TokenType {
  kEof = 0,
  kIdentifier,      // foo, "quoted"
  kKeyword,         // SELECT, FROM, ...
  kIntegerLiteral,  // 42
  kFloatLiteral,    // 3.14
  kStringLiteral,   // 'abc' (text holds the unquoted content)
  // Operators / punctuation.
  kComma,
  kLParen,
  kRParen,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNeq,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kArrow,     // =>  (named TVF arguments)
  kSemicolon,
};

const char* TokenTypeToString(TokenType type);

/// A lexical token with source position (1-based line/column) for error
/// reporting.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  int line = 1;
  int column = 1;

  bool IsKeyword(const char* kw) const;
  std::string ToString() const;
};

}  // namespace sql
}  // namespace onesql

#endif  // ONESQL_SQL_TOKEN_H_
