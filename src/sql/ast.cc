#include "sql/ast.h"

namespace onesql {
namespace sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "NOT";
    case UnaryOp::kNeg: return "-";
  }
  return "?";
}

const char* JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner: return "INNER JOIN";
    case JoinType::kLeft: return "LEFT JOIN";
    case JoinType::kCross: return "CROSS JOIN";
  }
  return "?";
}

std::string LiteralExpr::ToString() const {
  switch (value_.type()) {
    case DataType::kVarchar:
      return "'" + value_.AsString() + "'";
    case DataType::kInterval:
      return "INTERVAL " + value_.AsInterval().ToString();
    case DataType::kTimestamp:
      return "TIMESTAMP '" + value_.AsTimestamp().ToString() + "'";
    default:
      return value_.ToString();
  }
}

std::string ColumnRefExpr::ToString() const {
  if (qualifier_.empty()) return name_;
  return qualifier_ + "." + name_;
}

std::string StarExpr::ToString() const {
  if (qualifier_.empty()) return "*";
  return qualifier_ + ".*";
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name_;
  out += "(";
  if (distinct_) out += "DISTINCT ";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

std::string UnaryExpr::ToString() const {
  std::string out = UnaryOpToString(op_);
  out += op_ == UnaryOp::kNot ? " " : "";
  out += "(";
  out += operand_->ToString();
  out += ")";
  return out;
}

std::string BinaryExpr::ToString() const {
  std::string out = "(";
  out += left_->ToString();
  out += " ";
  out += BinaryOpToString(op_);
  out += " ";
  out += right_->ToString();
  out += ")";
  return out;
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const WhenClause& w : whens_) {
    out += " WHEN ";
    out += w.condition->ToString();
    out += " THEN ";
    out += w.result->ToString();
  }
  if (else_result_) {
    out += " ELSE ";
    out += else_result_->ToString();
  }
  out += " END";
  return out;
}

std::string CastExpr::ToString() const {
  std::string out = "CAST(";
  out += operand_->ToString();
  out += " AS ";
  out += DataTypeToString(target_);
  out += ")";
  return out;
}

std::string IsNullExpr::ToString() const {
  std::string out = "(";
  out += operand_->ToString();
  out += negated_ ? " IS NOT NULL)" : " IS NULL)";
  return out;
}

std::string BaseTableRef::ToString() const {
  std::string out = name_;
  if (!alias_.empty()) {
    out += " ";
    out += alias_;
  }
  return out;
}

std::string DerivedTableRef::ToString() const {
  std::string out = "(";
  out += query_->ToString();
  out += ")";
  if (!alias_.empty()) {
    out += " ";
    out += alias_;
  }
  return out;
}

std::string TvfArg::ToString() const {
  std::string out;
  if (!name.empty()) {
    out += name;
    out += " => ";
  }
  switch (arg_kind) {
    case Kind::kTable:
      out += "TABLE(";
      out += table->ToString();
      out += ")";
      break;
    case Kind::kDescriptor:
      out += "DESCRIPTOR(";
      out += descriptor;
      out += ")";
      break;
    case Kind::kScalar:
      out += scalar->ToString();
      break;
  }
  return out;
}

std::string TvfRef::ToString() const {
  std::string out = function_name_;
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  if (!alias_.empty()) {
    out += " ";
    out += alias_;
  }
  return out;
}

std::string JoinRef::ToString() const {
  std::string out = "(";
  out += left_->ToString();
  out += " ";
  out += JoinTypeToString(join_type_);
  out += " ";
  out += right_->ToString();
  if (condition_) {
    out += " ON ";
    out += condition_->ToString();
  }
  out += ")";
  return out;
}

std::string SelectItem::ToString() const {
  std::string out = expr->ToString();
  if (!alias.empty()) {
    out += " AS ";
    out += alias;
  }
  return out;
}

std::string EmitClause::ToString() const {
  std::string out = "EMIT";
  if (stream) out += " STREAM";
  bool first = true;
  if (delay.has_value()) {
    out += " AFTER DELAY INTERVAL ";
    out += delay->ToString();
    first = false;
  }
  if (after_watermark) {
    out += first ? " AFTER WATERMARK" : " AND AFTER WATERMARK";
  }
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].ToString();
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i]->ToString();
    }
  }
  if (where) {
    out += " WHERE ";
    out += where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) {
    out += " HAVING ";
    out += having->ToString();
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit.has_value()) {
    out += " LIMIT ";
    out += std::to_string(*limit);
  }
  if (emit.has_value()) {
    out += " ";
    out += emit->ToString();
  }
  return out;
}

}  // namespace sql
}  // namespace onesql
