#ifndef ONESQL_SQL_PARSER_H_
#define ONESQL_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace onesql {
namespace sql {

/// Recursive-descent parser for the dialect: standard SQL SELECT with joins,
/// derived tables, grouping/having/order/limit, windowing TVFs with named
/// arguments (SQL:2016 polymorphic table functions), and the paper's EMIT
/// materialization-control extensions.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses a full statement (a SELECT, optionally ';'-terminated) and
  /// requires that all input is consumed.
  Result<std::unique_ptr<SelectStmt>> ParseStatement();

  /// Convenience: tokenize + parse in one step.
  static Result<std::unique_ptr<SelectStmt>> Parse(const std::string& sql);

 private:
  // Token cursor helpers.
  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  bool MatchToken(TokenType type);
  bool MatchKeyword(const char* kw);
  Status Expect(TokenType type, const char* what);
  Status ExpectKeyword(const char* kw);
  Status Error(const std::string& message) const;

  // Grammar productions.
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<SelectItem> ParseSelectItem();
  Result<TableRefPtr> ParseTableRef();
  Result<TableRefPtr> ParseTablePrimary();
  Result<TvfArg> ParseTvfArg();
  Result<std::string> ParseOptionalAlias();
  Result<EmitClause> ParseEmitClause();
  Result<Interval> ParseIntervalLiteral();

  // Expression parsing by precedence climbing.
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<DataType> ParseTypeName();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sql
}  // namespace onesql

#endif  // ONESQL_SQL_PARSER_H_
