#include "sql/lexer.h"

#include <cctype>

#include "common/schema.h"

namespace onesql {
namespace sql {

namespace {

// Keywords of the dialect: standard SQL plus the paper's proposed extensions
// (EMIT, STREAM, AFTER, WATERMARK, DELAY) and TVF support (TABLE,
// DESCRIPTOR).
const char* const kKeywords[] = {
    "SELECT", "FROM",   "WHERE",    "GROUP",     "BY",       "HAVING",
    "ORDER",  "LIMIT",  "AS",       "AND",       "OR",       "NOT",
    "JOIN",   "INNER",  "LEFT",     "RIGHT",     "FULL",     "OUTER",
    "CROSS",  "ON",     "ASC",      "DESC",      "DISTINCT", "ALL",
    "TRUE",   "FALSE",  "NULL",     "IS",        "BETWEEN",  "IN",
    "CASE",   "WHEN",   "THEN",     "ELSE",      "END",      "CAST",
    "INTERVAL", "YEAR", "MONTH",    "DAY",       "HOUR",     "MINUTE",
    "MINUTES", "SECOND", "SECONDS", "MILLISECOND", "MILLISECONDS",
    "HOURS",  "DAYS",   "TABLE",    "DESCRIPTOR", "EMIT",    "AFTER",
    "WATERMARK", "DELAY", "STREAM",  "TIMESTAMP", "UNION",   "EXISTS",
    "LIKE",   "CURRENT_TIME",
};

}  // namespace

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEof: return "EOF";
    case TokenType::kIdentifier: return "IDENT";
    case TokenType::kKeyword: return "KEYWORD";
    case TokenType::kIntegerLiteral: return "INT";
    case TokenType::kFloatLiteral: return "FLOAT";
    case TokenType::kStringLiteral: return "STRING";
    case TokenType::kComma: return ",";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kDot: return ".";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNeq: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kArrow: return "=>";
    case TokenType::kSemicolon: return ";";
  }
  return "?";
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && IdentEquals(text, kw);
}

std::string Token::ToString() const {
  std::string out = TokenTypeToString(type);
  if (type == TokenType::kIdentifier || type == TokenType::kKeyword ||
      type == TokenType::kIntegerLiteral || type == TokenType::kFloatLiteral ||
      type == TokenType::kStringLiteral) {
    out += "(";
    out += text;
    out += ")";
  }
  return out;
}

bool IsReservedKeyword(const std::string& word) {
  for (const char* kw : kKeywords) {
    if (IdentEquals(word, kw)) return true;
  }
  return false;
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    ONESQL_ASSIGN_OR_RETURN(Token tok, NextToken());
    const bool is_eof = tok.type == TokenType::kEof;
    tokens.push_back(std::move(tok));
    if (is_eof) break;
  }
  return tokens;
}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  const char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Token Lexer::Make(TokenType type, std::string text) const {
  Token tok;
  tok.type = type;
  tok.text = std::move(text);
  tok.line = token_line_;
  tok.column = token_column_;
  return tok;
}

Status Lexer::Error(const std::string& message) const {
  return Status::ParseError(message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    const char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (!AtEnd()) {
        Advance();
        Advance();
      }
    } else {
      break;
    }
  }
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  token_line_ = line_;
  token_column_ = column_;
  if (AtEnd()) return Make(TokenType::kEof, "");

  const char c = Peek();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      word += Advance();
    }
    if (IsReservedKeyword(word)) {
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      return Make(TokenType::kKeyword, std::move(upper));
    }
    return Make(TokenType::kIdentifier, std::move(word));
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      num += Advance();
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      num += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_float = true;
      num += Advance();
      if (Peek() == '+' || Peek() == '-') num += Advance();
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("malformed numeric literal");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
    }
    return Make(is_float ? TokenType::kFloatLiteral : TokenType::kIntegerLiteral,
                std::move(num));
  }

  if (c == '\'') {
    Advance();
    std::string content;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      const char ch = Advance();
      if (ch == '\'') {
        if (Peek() == '\'') {  // '' escape
          content += '\'';
          Advance();
        } else {
          break;
        }
      } else {
        content += ch;
      }
    }
    return Make(TokenType::kStringLiteral, std::move(content));
  }

  if (c == '"') {
    Advance();
    std::string content;
    while (true) {
      if (AtEnd()) return Error("unterminated quoted identifier");
      const char ch = Advance();
      if (ch == '"') break;
      content += ch;
    }
    return Make(TokenType::kIdentifier, std::move(content));
  }

  Advance();
  switch (c) {
    case ',': return Make(TokenType::kComma, ",");
    case '(': return Make(TokenType::kLParen, "(");
    case ')': return Make(TokenType::kRParen, ")");
    case '.': return Make(TokenType::kDot, ".");
    case '*': return Make(TokenType::kStar, "*");
    case '+': return Make(TokenType::kPlus, "+");
    case '-': return Make(TokenType::kMinus, "-");
    case '/': return Make(TokenType::kSlash, "/");
    case '%': return Make(TokenType::kPercent, "%");
    case ';': return Make(TokenType::kSemicolon, ";");
    case '=':
      if (Peek() == '>') {
        Advance();
        return Make(TokenType::kArrow, "=>");
      }
      return Make(TokenType::kEq, "=");
    case '<':
      if (Peek() == '=') {
        Advance();
        return Make(TokenType::kLe, "<=");
      }
      if (Peek() == '>') {
        Advance();
        return Make(TokenType::kNeq, "<>");
      }
      return Make(TokenType::kLt, "<");
    case '>':
      if (Peek() == '=') {
        Advance();
        return Make(TokenType::kGe, ">=");
      }
      return Make(TokenType::kGt, ">");
    case '!':
      if (Peek() == '=') {
        Advance();
        return Make(TokenType::kNeq, "!=");
      }
      return Error("unexpected character '!'");
    default:
      return Error(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace sql
}  // namespace onesql
