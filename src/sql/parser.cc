#include "sql/parser.h"

#include <cstdlib>

#include "common/schema.h"
#include "sql/lexer.h"

namespace onesql {
namespace sql {

Result<std::unique_ptr<SelectStmt>> Parser::Parse(const std::string& sql) {
  Lexer lexer(sql);
  ONESQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::MatchToken(TokenType type) {
  if (Check(type)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* what) {
  if (Check(type)) {
    Advance();
    return Status::OK();
  }
  return Error(std::string("expected ") + what + ", found " +
               Peek().ToString());
}

Status Parser::ExpectKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return Status::OK();
  }
  return Error(std::string("expected ") + kw + ", found " + Peek().ToString());
}

Status Parser::Error(const std::string& message) const {
  const Token& tok = Peek();
  return Status::ParseError(message + " at line " + std::to_string(tok.line) +
                            ", column " + std::to_string(tok.column));
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseStatement() {
  ONESQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect());
  MatchToken(TokenType::kSemicolon);
  if (!Check(TokenType::kEof)) {
    return Error("unexpected trailing input: " + Peek().ToString());
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  ONESQL_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();

  if (MatchKeyword("DISTINCT")) {
    stmt->distinct = true;
  } else {
    MatchKeyword("ALL");
  }

  do {
    ONESQL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->select_list.push_back(std::move(item));
  } while (MatchToken(TokenType::kComma));

  if (MatchKeyword("FROM")) {
    do {
      ONESQL_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (MatchToken(TokenType::kComma));
  }

  if (MatchKeyword("WHERE")) {
    ONESQL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  if (CheckKeyword("GROUP")) {
    Advance();
    ONESQL_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      ONESQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (MatchToken(TokenType::kComma));
  }

  if (MatchKeyword("HAVING")) {
    ONESQL_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }

  if (CheckKeyword("ORDER")) {
    Advance();
    ONESQL_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      ONESQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchToken(TokenType::kComma));
  }

  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kIntegerLiteral)) {
      return Error("expected integer after LIMIT");
    }
    stmt->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }

  if (CheckKeyword("EMIT")) {
    ONESQL_ASSIGN_OR_RETURN(EmitClause emit, ParseEmitClause());
    stmt->emit = emit;
  }

  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // Plain `*`.
  if (Check(TokenType::kStar)) {
    Advance();
    item.expr = std::make_unique<StarExpr>();
    return item;
  }
  // Qualified star `t.*`.
  if (Check(TokenType::kIdentifier) && Peek(1).type == TokenType::kDot &&
      Peek(2).type == TokenType::kStar) {
    std::string qualifier = Advance().text;
    Advance();  // .
    Advance();  // *
    item.expr = std::make_unique<StarExpr>(std::move(qualifier));
    return item;
  }
  ONESQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return Error("expected alias after AS");
    }
    item.alias = Advance().text;
  } else if (Check(TokenType::kIdentifier)) {
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRefPtr> Parser::ParseTableRef() {
  ONESQL_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
  while (true) {
    JoinType join_type;
    bool has_on = true;
    if (MatchKeyword("JOIN") || (CheckKeyword("INNER") &&
                                 Peek(1).IsKeyword("JOIN"))) {
      if (Peek().IsKeyword("JOIN")) Advance();
      join_type = JoinType::kInner;
    } else if (CheckKeyword("LEFT")) {
      Advance();
      MatchKeyword("OUTER");
      ONESQL_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join_type = JoinType::kLeft;
    } else if (CheckKeyword("CROSS")) {
      Advance();
      ONESQL_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join_type = JoinType::kCross;
      has_on = false;
    } else {
      break;
    }
    ONESQL_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
    ExprPtr condition;
    if (has_on) {
      ONESQL_RETURN_NOT_OK(ExpectKeyword("ON"));
      ONESQL_ASSIGN_OR_RETURN(condition, ParseExpr());
    }
    left = std::make_unique<JoinRef>(join_type, std::move(left),
                                     std::move(right), std::move(condition));
  }
  return left;
}

Result<TableRefPtr> Parser::ParseTablePrimary() {
  // Derived table: ( SELECT ... ) alias
  if (Check(TokenType::kLParen)) {
    Advance();
    if (!CheckKeyword("SELECT")) {
      return Error("expected SELECT in derived table");
    }
    ONESQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    ONESQL_ASSIGN_OR_RETURN(std::string alias, ParseOptionalAlias());
    if (alias.empty()) {
      return Error("derived table requires an alias");
    }
    return TableRefPtr(
        new DerivedTableRef(std::move(sub), std::move(alias)));
  }
  if (!Check(TokenType::kIdentifier)) {
    return Error("expected table name, found " + Peek().ToString());
  }
  std::string name = Advance().text;
  // TVF invocation: ident ( args ) alias
  if (Check(TokenType::kLParen)) {
    Advance();
    std::vector<TvfArg> args;
    if (!Check(TokenType::kRParen)) {
      do {
        ONESQL_ASSIGN_OR_RETURN(TvfArg arg, ParseTvfArg());
        args.push_back(std::move(arg));
      } while (MatchToken(TokenType::kComma));
    }
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    ONESQL_ASSIGN_OR_RETURN(std::string alias, ParseOptionalAlias());
    return TableRefPtr(
        new TvfRef(std::move(name), std::move(args), std::move(alias)));
  }
  ONESQL_ASSIGN_OR_RETURN(std::string alias, ParseOptionalAlias());
  return TableRefPtr(new BaseTableRef(std::move(name), std::move(alias)));
}

Result<TvfArg> Parser::ParseTvfArg() {
  TvfArg arg;
  if (Check(TokenType::kIdentifier) && Peek(1).type == TokenType::kArrow) {
    arg.name = Advance().text;
    Advance();  // =>
  }
  if (CheckKeyword("TABLE")) {
    Advance();
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after TABLE"));
    ONESQL_ASSIGN_OR_RETURN(arg.table, ParseTableRef());
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    arg.arg_kind = TvfArg::Kind::kTable;
    return arg;
  }
  if (CheckKeyword("DESCRIPTOR")) {
    Advance();
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after DESCRIPTOR"));
    if (!Check(TokenType::kIdentifier)) {
      return Error("expected column name in DESCRIPTOR");
    }
    arg.descriptor = Advance().text;
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    arg.arg_kind = TvfArg::Kind::kDescriptor;
    return arg;
  }
  ONESQL_ASSIGN_OR_RETURN(arg.scalar, ParseExpr());
  arg.arg_kind = TvfArg::Kind::kScalar;
  return arg;
}

Result<std::string> Parser::ParseOptionalAlias() {
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return Status(StatusCode::kParseError, "expected alias after AS");
    }
    return Advance().text;
  }
  if (Check(TokenType::kIdentifier)) {
    return Advance().text;
  }
  return std::string();
}

Result<EmitClause> Parser::ParseEmitClause() {
  ONESQL_RETURN_NOT_OK(ExpectKeyword("EMIT"));
  EmitClause emit;
  if (MatchKeyword("STREAM")) emit.stream = true;
  bool more = MatchKeyword("AFTER");
  while (more) {
    if (MatchKeyword("WATERMARK")) {
      if (emit.after_watermark) {
        return Error("duplicate AFTER WATERMARK");
      }
      emit.after_watermark = true;
    } else if (MatchKeyword("DELAY")) {
      if (emit.delay.has_value()) {
        return Error("duplicate AFTER DELAY");
      }
      ONESQL_ASSIGN_OR_RETURN(Interval delay, ParseIntervalLiteral());
      emit.delay = delay;
    } else {
      return Error("expected WATERMARK or DELAY after AFTER");
    }
    more = false;
    if (MatchKeyword("AND")) {
      ONESQL_RETURN_NOT_OK(ExpectKeyword("AFTER"));
      more = true;
    }
  }
  return emit;
}

Result<Interval> Parser::ParseIntervalLiteral() {
  ONESQL_RETURN_NOT_OK(ExpectKeyword("INTERVAL"));
  if (!Check(TokenType::kStringLiteral)) {
    return Error("expected quoted value after INTERVAL");
  }
  const std::string text = Advance().text;
  char* end = nullptr;
  const long long n = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Error("malformed INTERVAL value '" + text + "'");
  }
  const Token& unit = Peek();
  if (unit.type != TokenType::kKeyword) {
    return Error("expected INTERVAL unit, found " + unit.ToString());
  }
  Advance();
  if (IdentEquals(unit.text, "MILLISECOND") ||
      IdentEquals(unit.text, "MILLISECONDS")) {
    return Interval::Millis(n);
  }
  if (IdentEquals(unit.text, "SECOND") || IdentEquals(unit.text, "SECONDS")) {
    return Interval::Seconds(n);
  }
  if (IdentEquals(unit.text, "MINUTE") || IdentEquals(unit.text, "MINUTES")) {
    return Interval::Minutes(n);
  }
  if (IdentEquals(unit.text, "HOUR") || IdentEquals(unit.text, "HOURS")) {
    return Interval::Hours(n);
  }
  if (IdentEquals(unit.text, "DAY") || IdentEquals(unit.text, "DAYS")) {
    return Interval::Days(n);
  }
  return Error("unsupported INTERVAL unit '" + unit.text + "'");
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  ONESQL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    ONESQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  ONESQL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    ONESQL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    ONESQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(new UnaryExpr(UnaryOp::kNot, std::move(operand)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  ONESQL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL
  if (CheckKeyword("IS")) {
    Advance();
    const bool negated = MatchKeyword("NOT");
    ONESQL_RETURN_NOT_OK(ExpectKeyword("NULL"));
    return ExprPtr(new IsNullExpr(std::move(left), negated));
  }
  if (CheckKeyword("BETWEEN")) {
    return Status::NotImplemented(
        "BETWEEN is not supported; rewrite as two comparisons");
  }
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNeq: op = BinaryOp::kNeq; break;
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    default:
      return left;
  }
  Advance();
  ONESQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return ExprPtr(new BinaryExpr(op, std::move(left), std::move(right)));
}

Result<ExprPtr> Parser::ParseAdditive() {
  ONESQL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Check(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      break;
    }
    Advance();
    ONESQL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  ONESQL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Check(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Check(TokenType::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    Advance();
    ONESQL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Check(TokenType::kMinus)) {
    Advance();
    ONESQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return ExprPtr(new UnaryExpr(UnaryOp::kNeg, std::move(operand)));
  }
  if (Check(TokenType::kPlus)) {
    Advance();
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<DataType> Parser::ParseTypeName() {
  const Token& tok = Peek();
  std::string name;
  if (tok.type == TokenType::kKeyword || tok.type == TokenType::kIdentifier) {
    name = tok.text;
  } else {
    return Error("expected type name");
  }
  Advance();
  if (IdentEquals(name, "BOOLEAN")) return DataType::kBoolean;
  if (IdentEquals(name, "BIGINT") || IdentEquals(name, "INTEGER") ||
      IdentEquals(name, "INT")) {
    return DataType::kBigint;
  }
  if (IdentEquals(name, "DOUBLE") || IdentEquals(name, "FLOAT")) {
    return DataType::kDouble;
  }
  if (IdentEquals(name, "VARCHAR") || IdentEquals(name, "CHAR")) {
    return DataType::kVarchar;
  }
  if (IdentEquals(name, "TIMESTAMP")) return DataType::kTimestamp;
  if (IdentEquals(name, "INTERVAL")) return DataType::kInterval;
  return Error("unknown type name '" + name + "'");
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();

  switch (tok.type) {
    case TokenType::kIntegerLiteral: {
      Advance();
      return ExprPtr(new LiteralExpr(
          Value::Int64(std::strtoll(tok.text.c_str(), nullptr, 10))));
    }
    case TokenType::kFloatLiteral: {
      Advance();
      return ExprPtr(new LiteralExpr(
          Value::Double(std::strtod(tok.text.c_str(), nullptr))));
    }
    case TokenType::kStringLiteral: {
      Advance();
      return ExprPtr(new LiteralExpr(Value::String(tok.text)));
    }
    case TokenType::kLParen: {
      Advance();
      ONESQL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    default:
      break;
  }

  if (tok.type == TokenType::kKeyword) {
    if (MatchKeyword("TRUE")) return ExprPtr(new LiteralExpr(Value::Bool(true)));
    if (MatchKeyword("FALSE")) {
      return ExprPtr(new LiteralExpr(Value::Bool(false)));
    }
    if (MatchKeyword("NULL")) return ExprPtr(new LiteralExpr(Value::Null()));
    if (MatchKeyword("CURRENT_TIME")) {
      return ExprPtr(new CurrentTimeExpr());
    }
    if (CheckKeyword("INTERVAL")) {
      ONESQL_ASSIGN_OR_RETURN(Interval interval, ParseIntervalLiteral());
      return ExprPtr(new LiteralExpr(Value::Duration(interval)));
    }
    if (CheckKeyword("TIMESTAMP")) {
      Advance();
      if (!Check(TokenType::kStringLiteral)) {
        return Error("expected quoted value after TIMESTAMP");
      }
      const std::string text = Advance().text;
      ONESQL_ASSIGN_OR_RETURN(Timestamp ts, Timestamp::Parse(text));
      return ExprPtr(new LiteralExpr(Value::Time(ts)));
    }
    if (MatchKeyword("CAST")) {
      ONESQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after CAST"));
      ONESQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
      ONESQL_RETURN_NOT_OK(ExpectKeyword("AS"));
      ONESQL_ASSIGN_OR_RETURN(DataType target, ParseTypeName());
      ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(new CastExpr(std::move(operand), target));
    }
    if (MatchKeyword("CASE")) {
      std::vector<CaseExpr::WhenClause> whens;
      while (MatchKeyword("WHEN")) {
        CaseExpr::WhenClause clause;
        ONESQL_ASSIGN_OR_RETURN(clause.condition, ParseExpr());
        ONESQL_RETURN_NOT_OK(ExpectKeyword("THEN"));
        ONESQL_ASSIGN_OR_RETURN(clause.result, ParseExpr());
        whens.push_back(std::move(clause));
      }
      if (whens.empty()) {
        return Error("CASE requires at least one WHEN clause");
      }
      ExprPtr else_result;
      if (MatchKeyword("ELSE")) {
        ONESQL_ASSIGN_OR_RETURN(else_result, ParseExpr());
      }
      ONESQL_RETURN_NOT_OK(ExpectKeyword("END"));
      return ExprPtr(new CaseExpr(std::move(whens), std::move(else_result)));
    }
    return Error("unexpected keyword " + tok.text + " in expression");
  }

  if (tok.type != TokenType::kIdentifier) {
    return Error("unexpected token " + tok.ToString() + " in expression");
  }

  std::string name = Advance().text;

  // Function call.
  if (Check(TokenType::kLParen)) {
    Advance();
    bool distinct = false;
    std::vector<ExprPtr> args;
    if (MatchKeyword("DISTINCT")) distinct = true;
    if (!Check(TokenType::kRParen)) {
      do {
        if (Check(TokenType::kStar)) {
          Advance();
          args.push_back(std::make_unique<StarExpr>());
        } else {
          ONESQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        }
      } while (MatchToken(TokenType::kComma));
    }
    ONESQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(
        new FunctionCallExpr(std::move(name), std::move(args), distinct));
  }

  // Qualified column reference.
  if (Check(TokenType::kDot)) {
    Advance();
    if (Check(TokenType::kStar)) {
      Advance();
      return ExprPtr(new StarExpr(std::move(name)));
    }
    if (!Check(TokenType::kIdentifier)) {
      return Error("expected column name after '.'");
    }
    std::string column = Advance().text;
    return ExprPtr(new ColumnRefExpr(std::move(name), std::move(column)));
  }

  return ExprPtr(new ColumnRefExpr("", std::move(name)));
}

}  // namespace sql
}  // namespace onesql
