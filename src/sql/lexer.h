#ifndef ONESQL_SQL_LEXER_H_
#define ONESQL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace onesql {
namespace sql {

/// Tokenizes a SQL string. Supports `--` line comments and `/* */` block
/// comments, single-quoted string literals with '' escaping, and
/// double-quoted identifiers.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  /// Produces the full token stream, terminated by a kEof token.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }
  Token Make(TokenType type, std::string text) const;
  Status Error(const std::string& message) const;

  std::string input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

/// True if `word` (case-insensitive) is a reserved SQL keyword recognized by
/// this dialect.
bool IsReservedKeyword(const std::string& word);

}  // namespace sql
}  // namespace onesql

#endif  // ONESQL_SQL_LEXER_H_
