#ifndef ONESQL_SQL_AST_H_
#define ONESQL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/value.h"

namespace onesql {
namespace sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNot, kNeg };

const char* BinaryOpToString(BinaryOp op);
const char* UnaryOpToString(UnaryOp op);

/// Base class for all scalar expression AST nodes.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumnRef,
    kStar,
    kFunctionCall,
    kUnary,
    kBinary,
    kCase,
    kCast,
    kIsNull,
    kCurrentTime,
  };

  explicit Expr(Kind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Unparses the expression back to SQL-ish text (used in error messages,
  /// plan explanation, and parser round-trip tests).
  virtual std::string ToString() const = 0;

 private:
  Kind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A literal constant, including INTERVAL '10' MINUTE (as an Interval value)
/// and TIMESTAMP '8:07' (as a Timestamp value).
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(Kind::kLiteral), value_(std::move(value)) {}
  const Value& value() const { return value_; }
  std::string ToString() const override;

 private:
  Value value_;
};

/// A possibly-qualified column reference: `price` or `Bid.price`.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(Kind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}
  const std::string& qualifier() const { return qualifier_; }  // may be empty
  const std::string& name() const { return name_; }
  std::string ToString() const override;

 private:
  std::string qualifier_;
  std::string name_;
};

/// `*` or `t.*` in a select list (or inside COUNT(*)).
class StarExpr : public Expr {
 public:
  explicit StarExpr(std::string qualifier = "")
      : Expr(Kind::kStar), qualifier_(std::move(qualifier)) {}
  const std::string& qualifier() const { return qualifier_; }
  std::string ToString() const override;

 private:
  std::string qualifier_;
};

/// A scalar or aggregate function call. Aggregates are distinguished during
/// binding, not parsing.
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args,
                   bool distinct = false)
      : Expr(Kind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)),
        distinct_(distinct) {}
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  bool distinct() const { return distinct_; }
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  bool distinct_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}
  UnaryOp op() const { return op_; }
  const Expr& operand() const { return *operand_; }
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Searched CASE: CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END.
class CaseExpr : public Expr {
 public:
  struct WhenClause {
    ExprPtr condition;
    ExprPtr result;
  };
  CaseExpr(std::vector<WhenClause> whens, ExprPtr else_result)
      : Expr(Kind::kCase),
        whens_(std::move(whens)),
        else_result_(std::move(else_result)) {}
  const std::vector<WhenClause>& whens() const { return whens_; }
  const Expr* else_result() const { return else_result_.get(); }  // nullable
  std::string ToString() const override;

 private:
  std::vector<WhenClause> whens_;
  ExprPtr else_result_;
};

/// CAST(expr AS type).
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr operand, DataType target)
      : Expr(Kind::kCast), operand_(std::move(operand)), target_(target) {}
  const Expr& operand() const { return *operand_; }
  DataType target() const { return target_; }
  std::string ToString() const override;

 private:
  ExprPtr operand_;
  DataType target_;
};

/// CURRENT_TIME — a *time-progressing expression* (the paper's Section 8
/// future work). Standard SQL fixes CURRENT_TIME at query execution time;
/// for continuous queries the paper proposes expressions that progress over
/// time. This dialect supports it in WHERE predicates of the form
/// `<event-time column> >= CURRENT_TIME - <interval>` ("the tail of the
/// stream"), where it denotes the relation's current event-time clock (the
/// watermark).
class CurrentTimeExpr : public Expr {
 public:
  CurrentTimeExpr() : Expr(Kind::kCurrentTime) {}
  std::string ToString() const override { return "CURRENT_TIME"; }
};

/// expr IS [NOT] NULL.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(Kind::kIsNull), operand_(std::move(operand)), negated_(negated) {}
  const Expr& operand() const { return *operand_; }
  bool negated() const { return negated_; }
  std::string ToString() const override;

 private:
  ExprPtr operand_;
  bool negated_;
};

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

class SelectStmt;

/// Base class for FROM-clause items.
class TableRef {
 public:
  enum class Kind { kBase, kDerived, kTvf, kJoin };
  explicit TableRef(Kind kind) : kind_(kind) {}
  virtual ~TableRef() = default;
  Kind kind() const { return kind_; }
  virtual std::string ToString() const = 0;

 private:
  Kind kind_;
};

using TableRefPtr = std::unique_ptr<TableRef>;

/// A named table or stream from the catalog, with optional alias.
class BaseTableRef : public TableRef {
 public:
  BaseTableRef(std::string name, std::string alias)
      : TableRef(Kind::kBase),
        name_(std::move(name)),
        alias_(std::move(alias)) {}
  const std::string& name() const { return name_; }
  const std::string& alias() const { return alias_; }  // may be empty
  std::string ToString() const override;

 private:
  std::string name_;
  std::string alias_;
};

/// A parenthesized subquery in FROM, with alias: (SELECT ...) MaxBid.
class DerivedTableRef : public TableRef {
 public:
  DerivedTableRef(std::unique_ptr<SelectStmt> query, std::string alias)
      : TableRef(Kind::kDerived),
        query_(std::move(query)),
        alias_(std::move(alias)) {}
  const SelectStmt& query() const { return *query_; }
  const std::string& alias() const { return alias_; }
  std::string ToString() const override;

 private:
  std::unique_ptr<SelectStmt> query_;
  std::string alias_;
};

/// One argument of a table-valued function invocation. Per SQL:2016 (and the
/// paper's Extension 3), arguments may be named with `=>` and may be a table
/// (`TABLE(Bid)`), a column descriptor (`DESCRIPTOR(bidtime)`), or a scalar
/// expression (`INTERVAL '10' MINUTE`).
struct TvfArg {
  std::string name;  // empty for positional
  enum class Kind { kTable, kDescriptor, kScalar } arg_kind = Kind::kScalar;
  TableRefPtr table;        // kTable
  std::string descriptor;   // kDescriptor: referenced column name
  ExprPtr scalar;           // kScalar

  std::string ToString() const;
};

/// An invocation of a windowing TVF in FROM: Tumble(...) alias.
class TvfRef : public TableRef {
 public:
  TvfRef(std::string function_name, std::vector<TvfArg> args, std::string alias)
      : TableRef(Kind::kTvf),
        function_name_(std::move(function_name)),
        args_(std::move(args)),
        alias_(std::move(alias)) {}
  const std::string& function_name() const { return function_name_; }
  const std::vector<TvfArg>& args() const { return args_; }
  const std::string& alias() const { return alias_; }
  std::string ToString() const override;

 private:
  std::string function_name_;
  std::vector<TvfArg> args_;
  std::string alias_;
};

enum class JoinType { kInner, kLeft, kCross };

const char* JoinTypeToString(JoinType type);

/// An explicit JOIN ... ON. Comma-separated FROM items parse to kCross joins
/// (with the predicate living in WHERE).
class JoinRef : public TableRef {
 public:
  JoinRef(JoinType join_type, TableRefPtr left, TableRefPtr right,
          ExprPtr condition)
      : TableRef(Kind::kJoin),
        join_type_(join_type),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)) {}
  JoinType join_type() const { return join_type_; }
  const TableRef& left() const { return *left_; }
  const TableRef& right() const { return *right_; }
  const Expr* condition() const { return condition_.get(); }  // nullable
  std::string ToString() const override;

 private:
  JoinType join_type_;
  TableRefPtr left_;
  TableRefPtr right_;
  ExprPtr condition_;
};

// ---------------------------------------------------------------------------
// SELECT statement
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;       // StarExpr for `*` / `t.*`
  std::string alias;  // may be empty

  std::string ToString() const;
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

/// The paper's proposed EMIT clause (Extensions 4-7):
///   EMIT STREAM
///   EMIT AFTER WATERMARK
///   EMIT STREAM AFTER WATERMARK
///   EMIT [STREAM] AFTER DELAY <interval>
///   EMIT [STREAM] AFTER DELAY <interval> AND AFTER WATERMARK
struct EmitClause {
  bool stream = false;
  bool after_watermark = false;
  std::optional<Interval> delay;

  std::string ToString() const;
};

/// A parsed SELECT statement.
class SelectStmt {
 public:
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRefPtr> from;  // implicit cross join when > 1
  ExprPtr where;                  // nullable
  std::vector<ExprPtr> group_by;
  ExprPtr having;                 // nullable
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  std::optional<EmitClause> emit;

  std::string ToString() const;
};

}  // namespace sql
}  // namespace onesql

#endif  // ONESQL_SQL_AST_H_
