#include "state/wal.h"

#include <chrono>
#include <utility>

#include "obs/instruments.h"
#include "state/frame.h"
#include "state/serde.h"

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace onesql {
namespace state {

namespace {

constexpr char kWalMagic[] = "1SQLWAL1";  // 8 bytes, excluding the NUL
constexpr uint64_t kWalVersion = 1;

std::string EncodeHeader() {
  Writer w;
  w.PutBytes(std::string_view(kWalMagic, 8));
  w.PutVarint(kWalVersion);
  return w.TakeBuffer();
}

Status CheckHeader(std::string_view payload) {
  if (payload.size() < 8 ||
      std::string_view(payload.data(), 8) != std::string_view(kWalMagic, 8)) {
    return Status::DataLoss("not a feed log: bad magic in header frame");
  }
  Reader body(std::string_view(payload.data() + 8, payload.size() - 8));
  ONESQL_ASSIGN_OR_RETURN(uint64_t version, body.ReadVarint());
  if (version != kWalVersion) {
    return Status::DataLoss("unsupported feed log format version " +
                            std::to_string(version));
  }
  ONESQL_RETURN_NOT_OK(body.ExpectEnd());
  return Status::OK();
}

std::string EncodeRecord(const WalRecord& record) {
  Writer w;
  w.PutVarint(record.seq);
  w.PutU8(static_cast<uint8_t>(record.kind));
  w.PutString(record.source);
  w.PutTimestamp(record.ptime);
  if (record.kind == WalRecord::Kind::kWatermark) {
    w.PutTimestamp(record.watermark);
  } else {
    w.PutRow(record.row);
  }
  return w.TakeBuffer();
}

Result<WalRecord> DecodeRecord(std::string_view payload) {
  Reader r(payload);
  WalRecord rec;
  ONESQL_ASSIGN_OR_RETURN(rec.seq, r.ReadVarint());
  ONESQL_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > static_cast<uint8_t>(WalRecord::Kind::kWatermark)) {
    return Status::DataLoss("unknown record kind " + std::to_string(kind) +
                            " in feed log");
  }
  rec.kind = static_cast<WalRecord::Kind>(kind);
  ONESQL_ASSIGN_OR_RETURN(rec.source, r.ReadString());
  ONESQL_ASSIGN_OR_RETURN(rec.ptime, r.ReadTimestamp());
  if (rec.kind == WalRecord::Kind::kWatermark) {
    ONESQL_ASSIGN_OR_RETURN(rec.watermark, r.ReadTimestamp());
  } else {
    ONESQL_ASSIGN_OR_RETURN(rec.row, r.ReadRow());
  }
  ONESQL_RETURN_NOT_OK(r.ExpectEnd());
  return rec;
}

int FsyncFile(std::FILE* f) {
#ifdef _WIN32
  return _commit(_fileno(f));
#else
  return ::fsync(fileno(f));
#endif
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

/// Validates a whole log file and decodes its records. `records` may be null
/// when only the tail sequence number is wanted.
Result<uint64_t> ValidateLog(const std::string& path,
                             std::vector<WalRecord>* records) {
  ONESQL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  const char* p = data.data();
  const char* end = p + data.size();
  ONESQL_ASSIGN_OR_RETURN(std::string_view header, ReadFrame(&p, end));
  ONESQL_RETURN_NOT_OK(CheckHeader(header));
  uint64_t next_seq = 0;
  while (p != end) {
    ONESQL_ASSIGN_OR_RETURN(std::string_view payload, ReadFrame(&p, end));
    ONESQL_ASSIGN_OR_RETURN(WalRecord rec, DecodeRecord(payload));
    if (rec.seq != next_seq) {
      return Status::DataLoss(
          "feed log sequence gap: expected record " +
          std::to_string(next_seq) + ", found " + std::to_string(rec.seq));
    }
    ++next_seq;
    if (records != nullptr) records->push_back(std::move(rec));
  }
  return next_seq;
}

}  // namespace

FeedLog::~FeedLog() {
  if (file_ != nullptr) {
    (void)Close();
  }
}

FeedLog::FeedLog(FeedLog&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      next_seq_(other.next_seq_),
      dirty_(other.dirty_),
      metrics_(other.metrics_) {
  other.file_ = nullptr;
  other.dirty_ = false;
  other.metrics_ = nullptr;
}

FeedLog& FeedLog::operator=(FeedLog&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) (void)Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    next_seq_ = other.next_seq_;
    dirty_ = other.dirty_;
    metrics_ = other.metrics_;
    other.file_ = nullptr;
    other.dirty_ = false;
    other.metrics_ = nullptr;
  }
  return *this;
}

Result<FeedLog> FeedLog::Open(const std::string& path) {
  FeedLog log;
  log.path_ = path;
  if (FileExists(path)) {
    // Validate the whole existing file before trusting its tail position.
    ONESQL_ASSIGN_OR_RETURN(log.next_seq_, ValidateLog(path, nullptr));
    log.file_ = std::fopen(path.c_str(), "ab");
    if (log.file_ == nullptr) {
      return Status::InvalidArgument("cannot open feed log '" + path +
                                     "' for appending");
    }
  } else {
    log.file_ = std::fopen(path.c_str(), "wb");
    if (log.file_ == nullptr) {
      return Status::InvalidArgument("cannot create feed log '" + path + "'");
    }
    std::string header;
    AppendFrame(&header, EncodeHeader());
    if (std::fwrite(header.data(), 1, header.size(), log.file_) !=
        header.size()) {
      return Status::DataLoss("failed to write feed log header to '" + path +
                              "'");
    }
    log.dirty_ = true;
    ONESQL_RETURN_NOT_OK(log.Sync());
    // The freshly created file's directory entry must be durable too, or a
    // crash right after "durability enabled" can leave no log at all.
    ONESQL_RETURN_NOT_OK(FsyncParentDir(path));
  }
  return log;
}

Result<std::vector<WalRecord>> FeedLog::ReadAll(const std::string& path) {
  std::vector<WalRecord> records;
  ONESQL_RETURN_NOT_OK(ValidateLog(path, &records).status());
  return records;
}

Status FeedLog::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::Internal("feed log is not open");
  }
  if (record.seq != next_seq_) {
    return Status::Internal("feed log append out of order: expected seq " +
                            std::to_string(next_seq_) + ", got " +
                            std::to_string(record.seq));
  }
  std::string frame;
  AppendFrame(&frame, EncodeRecord(record));
  const uint64_t start = metrics_ != nullptr ? MonotonicMicros() : 0;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::DataLoss("failed to append to feed log '" + path_ + "'");
  }
  if (metrics_ != nullptr) {
    metrics_->append_latency_us->Record(MonotonicMicros() - start);
    metrics_->appends->Increment();
    metrics_->bytes_written->Add(frame.size());
  }
  ++next_seq_;
  dirty_ = true;
  return Status::OK();
}

Status FeedLog::Sync() {
  if (file_ == nullptr) {
    return Status::Internal("feed log is not open");
  }
  if (!dirty_) return Status::OK();
  const uint64_t start = metrics_ != nullptr ? MonotonicMicros() : 0;
  if (std::fflush(file_) != 0 || FsyncFile(file_) != 0) {
    return Status::DataLoss("failed to sync feed log '" + path_ + "'");
  }
  if (metrics_ != nullptr) {
    metrics_->sync_latency_us->Record(MonotonicMicros() - start);
    metrics_->syncs->Increment();
  }
  dirty_ = false;
  return Status::OK();
}

Status FeedLog::Close() {
  if (file_ == nullptr) return Status::OK();
  Status sync = dirty_ ? Sync() : Status::OK();
  std::fclose(file_);
  file_ = nullptr;
  dirty_ = false;
  return sync;
}

// ---------------------------------------------------------------------------
// GroupCommitLog
// ---------------------------------------------------------------------------

Result<std::unique_ptr<GroupCommitLog>> GroupCommitLog::Open(
    const std::string& path) {
  ONESQL_ASSIGN_OR_RETURN(FeedLog log, FeedLog::Open(path));
  return std::unique_ptr<GroupCommitLog>(new GroupCommitLog(std::move(log)));
}

GroupCommitLog::GroupCommitLog(FeedLog log) : log_(std::move(log)) {
  path_ = log_.path();
  enqueued_seq_ = log_.next_seq();
  durable_seq_ = log_.next_seq();
  appender_ = std::thread([this] { AppenderLoop(); });
}

GroupCommitLog::~GroupCommitLog() { (void)Close(); }

Status GroupCommitLog::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Internal("group-commit log is closed");
  if (!error_.ok()) return error_;
  if (record.seq != enqueued_seq_) {
    return Status::Internal("feed log append out of order: expected seq " +
                            std::to_string(enqueued_seq_) + ", got " +
                            std::to_string(record.seq));
  }
  pending_.push_back(std::move(record));
  ++enqueued_seq_;
  work_cv_.notify_one();
  return Status::OK();
}

Status GroupCommitLog::WaitDurable(uint64_t up_to_seq) {
  std::unique_lock<std::mutex> lock(mu_);
  const obs::WalMetrics* metrics = metrics_;
  const uint64_t start = metrics != nullptr ? MonotonicMicros() : 0;
  durable_cv_.wait(
      lock, [&] { return durable_seq_ >= up_to_seq || !error_.ok(); });
  Status result = error_;
  lock.unlock();
  if (metrics != nullptr) {
    metrics->group_wait_us->Record(MonotonicMicros() - start);
  }
  return result;
}

Status GroupCommitLog::Sync() {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = enqueued_seq_;
  }
  return WaitDurable(target);
}

Status GroupCommitLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return error_;
    stop_ = true;
    work_cv_.notify_one();
  }
  if (appender_.joinable()) appender_.join();
  // The appender has exited; this thread owns the inner log now.
  Status close_status = log_.Close();
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.ok() && !close_status.ok()) error_ = close_status;
  durable_cv_.notify_all();
  return error_;
}

uint64_t GroupCommitLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_seq_;
}

void GroupCommitLog::AttachMetrics(const obs::WalMetrics* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  // The inner log picks the pointer up on the appender thread at the top of
  // its next group (it is the only thread touching log_ while running).
}

void GroupCommitLog::AppenderLoop() {
  std::vector<WalRecord> batch;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Swap out everything enqueued so far: records arriving while the
    // append+fsync below runs unlocked pile into the *next* group — that
    // accumulation is what amortizes the fsync across concurrent feeders.
    batch.clear();
    batch.swap(pending_);
    Status status = error_;
    const obs::WalMetrics* metrics = metrics_;
    log_.AttachMetrics(metrics);
    lock.unlock();
    if (status.ok()) {
      for (const WalRecord& record : batch) {
        status = log_.Append(record);
        if (!status.ok()) break;
      }
      if (status.ok()) status = log_.Sync();
    }
    lock.lock();
    if (status.ok()) {
      durable_seq_ = batch.back().seq + 1;
      if (metrics != nullptr) {
        metrics->group_size->Record(batch.size());
      }
    } else if (error_.ok()) {
      error_ = status;
    }
    durable_cv_.notify_all();
  }
}

}  // namespace state
}  // namespace onesql
