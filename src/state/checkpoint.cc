#include "state/checkpoint.h"

#include "state/frame.h"
#include "state/serde.h"

namespace onesql {
namespace state {

namespace {

constexpr char kCheckpointMagic[] = "1SQLCKP1";  // 8 bytes, excluding NUL
constexpr size_t kMagicLen = 8;
constexpr uint64_t kCheckpointVersion = 1;

std::string EncodeHeader() {
  Writer w;
  w.PutBytes(std::string_view(kCheckpointMagic, kMagicLen));
  w.PutVarint(kCheckpointVersion);
  return std::move(w).TakeBuffer();
}

Status CheckHeader(std::string_view payload) {
  if (payload.size() < kMagicLen ||
      payload.substr(0, kMagicLen) !=
          std::string_view(kCheckpointMagic, kMagicLen)) {
    return Status::DataLoss("not a checkpoint file: bad magic");
  }
  Reader body(payload.substr(kMagicLen));
  ONESQL_ASSIGN_OR_RETURN(uint64_t version, body.ReadVarint());
  if (version != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint format version " +
                            std::to_string(version));
  }
  return body.ExpectEnd();
}

}  // namespace

void CheckpointWriter::AddSection(std::string payload) {
  sections_.push_back(std::move(payload));
}

Status CheckpointWriter::WriteTo(const std::string& path) const {
  std::string data;
  AppendFrame(&data, EncodeHeader());
  for (const std::string& section : sections_) {
    AppendFrame(&data, section);
  }
  return WriteFileAtomic(path, data);
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  CheckpointReader reader;
  ONESQL_ASSIGN_OR_RETURN(reader.data_, ReadFileToString(path));
  const char* p = reader.data_.data();
  const char* end = p + reader.data_.size();
  ONESQL_ASSIGN_OR_RETURN(std::string_view header, ReadFrame(&p, end));
  ONESQL_RETURN_NOT_OK(CheckHeader(header));
  while (p != end) {
    ONESQL_ASSIGN_OR_RETURN(std::string_view payload, ReadFrame(&p, end));
    reader.sections_.emplace_back(
        static_cast<size_t>(payload.data() - reader.data_.data()),
        payload.size());
  }
  return reader;
}

}  // namespace state
}  // namespace onesql
