#include "state/serde.h"

#include <cstring>

#include "common/varint.h"

namespace onesql {
namespace state {

namespace {

/// Value payload tags. Stable on-disk numbers — append only, never renumber
/// (the checkpoint header carries a format version for breaking changes).
enum class ValueTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kTimestamp = 5,
  kInterval = 6,
};

Status Truncated(const char* what) {
  return Status::DataLoss(std::string("truncated serialized state: ") + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::PutVarint(uint64_t v) { AppendVarint64(&buf_, v); }

void Writer::PutSigned(int64_t v) { AppendSignedVarint64(&buf_, v); }

void Writer::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void Writer::PutBytes(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

void Writer::PutString(std::string_view s) {
  PutVarint(s.size());
  PutBytes(s);
}

void Writer::PutValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(static_cast<uint8_t>(ValueTag::kNull));
      return;
    case DataType::kBoolean:
      PutU8(static_cast<uint8_t>(ValueTag::kBool));
      PutBool(v.AsBool());
      return;
    case DataType::kBigint:
      PutU8(static_cast<uint8_t>(ValueTag::kInt64));
      PutSigned(v.AsInt64());
      return;
    case DataType::kDouble:
      PutU8(static_cast<uint8_t>(ValueTag::kDouble));
      PutDouble(v.AsDouble());
      return;
    case DataType::kVarchar:
      PutU8(static_cast<uint8_t>(ValueTag::kString));
      PutString(v.AsString());
      return;
    case DataType::kTimestamp:
      PutU8(static_cast<uint8_t>(ValueTag::kTimestamp));
      PutTimestamp(v.AsTimestamp());
      return;
    case DataType::kInterval:
      PutU8(static_cast<uint8_t>(ValueTag::kInterval));
      PutInterval(v.AsInterval());
      return;
  }
}

void Writer::PutRow(const Row& row) {
  PutVarint(row.size());
  for (const Value& v : row) PutValue(v);
}

void Writer::PutSchema(const Schema& schema) {
  PutVarint(schema.num_fields());
  for (const Field& f : schema.fields()) {
    PutString(f.name);
    PutU8(static_cast<uint8_t>(f.type));
    PutBool(f.is_event_time);
    PutU8(static_cast<uint8_t>(f.window_role));
  }
}

void Writer::PutChange(const Change& change) {
  PutU8(static_cast<uint8_t>(change.kind));
  PutRow(change.row);
  PutTimestamp(change.ptime);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Result<uint8_t> Reader::ReadU8() {
  if (p_ >= end_) return Truncated("u8");
  return static_cast<uint8_t>(*p_++);
}

Result<uint64_t> Reader::ReadVarint() {
  uint64_t v = 0;
  if (!GetVarint64(&p_, end_, &v)) return Truncated("varint");
  return v;
}

Result<int64_t> Reader::ReadSigned() {
  int64_t v = 0;
  if (!GetSignedVarint64(&p_, end_, &v)) return Truncated("signed varint");
  return v;
}

Result<bool> Reader::ReadBool() {
  ONESQL_ASSIGN_OR_RETURN(uint8_t b, ReadU8());
  if (b > 1) return Status::DataLoss("invalid bool byte in serialized state");
  return b == 1;
}

Result<double> Reader::ReadDouble() {
  if (static_cast<size_t>(end_ - p_) < 8) return Truncated("double");
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<unsigned char>(p_[i])) << (8 * i);
  }
  p_ += 8;
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Reader::ReadString() {
  ONESQL_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (len > static_cast<uint64_t>(end_ - p_)) return Truncated("string body");
  std::string s(p_, static_cast<size_t>(len));
  p_ += len;
  return s;
}

Result<Timestamp> Reader::ReadTimestamp() {
  ONESQL_ASSIGN_OR_RETURN(int64_t ms, ReadSigned());
  return Timestamp(ms);
}

Result<Interval> Reader::ReadInterval() {
  ONESQL_ASSIGN_OR_RETURN(int64_t ms, ReadSigned());
  return Interval(ms);
}

Result<Value> Reader::ReadValue() {
  ONESQL_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value::Null();
    case ValueTag::kBool: {
      ONESQL_ASSIGN_OR_RETURN(bool b, ReadBool());
      return Value::Bool(b);
    }
    case ValueTag::kInt64: {
      ONESQL_ASSIGN_OR_RETURN(int64_t v, ReadSigned());
      return Value::Int64(v);
    }
    case ValueTag::kDouble: {
      ONESQL_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value::Double(v);
    }
    case ValueTag::kString: {
      ONESQL_ASSIGN_OR_RETURN(std::string s, ReadString());
      return Value::String(std::move(s));
    }
    case ValueTag::kTimestamp: {
      ONESQL_ASSIGN_OR_RETURN(Timestamp t, ReadTimestamp());
      return Value::Time(t);
    }
    case ValueTag::kInterval: {
      ONESQL_ASSIGN_OR_RETURN(Interval i, ReadInterval());
      return Value::Duration(i);
    }
  }
  return Status::DataLoss("unknown value tag " + std::to_string(tag) +
                          " in serialized state");
}

Result<Row> Reader::ReadRow() {
  ONESQL_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  // Each value needs at least one tag byte; an impossible count means the
  // length field itself is damaged.
  if (n > remaining()) return Truncated("row");
  Row row;
  row.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ONESQL_ASSIGN_OR_RETURN(Value v, ReadValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<Schema> Reader::ReadSchema() {
  ONESQL_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  if (n > remaining()) return Truncated("schema");
  std::vector<Field> fields;
  fields.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Field f;
    ONESQL_ASSIGN_OR_RETURN(f.name, ReadString());
    ONESQL_ASSIGN_OR_RETURN(uint8_t type, ReadU8());
    if (type > static_cast<uint8_t>(DataType::kInterval)) {
      return Status::DataLoss("unknown data type in serialized schema");
    }
    f.type = static_cast<DataType>(type);
    ONESQL_ASSIGN_OR_RETURN(f.is_event_time, ReadBool());
    ONESQL_ASSIGN_OR_RETURN(uint8_t role, ReadU8());
    if (role > static_cast<uint8_t>(WindowRole::kEnd)) {
      return Status::DataLoss("unknown window role in serialized schema");
    }
    f.window_role = static_cast<WindowRole>(role);
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

Result<Change> Reader::ReadChange() {
  ONESQL_ASSIGN_OR_RETURN(uint8_t kind, ReadU8());
  if (kind > static_cast<uint8_t>(ChangeKind::kUpsert)) {
    return Status::DataLoss("unknown change kind in serialized state");
  }
  Change change;
  change.kind = static_cast<ChangeKind>(kind);
  ONESQL_ASSIGN_OR_RETURN(change.row, ReadRow());
  ONESQL_ASSIGN_OR_RETURN(change.ptime, ReadTimestamp());
  return change;
}

Result<std::string_view> Reader::ReadBlobBytes() {
  ONESQL_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (len > static_cast<uint64_t>(end_ - p_)) return Truncated("blob body");
  std::string_view bytes(p_, static_cast<size_t>(len));
  p_ += len;
  return bytes;
}

Result<Reader> Reader::ReadBlob() {
  ONESQL_ASSIGN_OR_RETURN(std::string_view bytes, ReadBlobBytes());
  return Reader(bytes);
}

Status Reader::ExpectEnd() const {
  if (p_ != end_) {
    return Status::DataLoss("serialized state has " +
                            std::to_string(remaining()) +
                            " unconsumed trailing bytes");
  }
  return Status::OK();
}

}  // namespace state
}  // namespace onesql
