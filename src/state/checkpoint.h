#ifndef ONESQL_STATE_CHECKPOINT_H_
#define ONESQL_STATE_CHECKPOINT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace onesql {
namespace state {

/// Container format for engine checkpoints: a versioned header frame followed
/// by one CRC-framed section per logical unit (engine metadata first, then one
/// section per continuous query). Every frame is independently checksummed —
/// see frame.h — so truncation or bit damage anywhere in the file surfaces as
/// Status::DataLoss at open time, never as undefined behavior.
///
/// Layout:
///   frame 0:  magic "1SQLCKP1" (8 bytes) + varint format version (currently 1)
///   frame 1+: opaque section payloads, in the order they were added
class CheckpointWriter {
 public:
  /// Appends one section payload. Sections are opaque to the container.
  void AddSection(std::string payload);

  /// Writes the whole checkpoint to `path` atomically (tmp + fsync + rename),
  /// so a crash mid-write leaves either the old file or the new one, never a
  /// torn hybrid.
  Status WriteTo(const std::string& path) const;

  /// Total bytes of section payloads added so far (excludes framing
  /// overhead) — the checkpoint-size figure exposed by the metrics layer.
  size_t payload_bytes() const {
    size_t total = 0;
    for (const auto& s : sections_) total += s.size();
    return total;
  }

 private:
  std::vector<std::string> sections_;
};

/// Validating reader for the checkpoint container. Open() reads the whole
/// file, checks the magic/version header and every frame CRC up front, and
/// indexes the section payloads; any damage yields DataLoss with no partial
/// state escaping.
class CheckpointReader {
 public:
  static Result<CheckpointReader> Open(const std::string& path);

  size_t num_sections() const { return sections_.size(); }

  /// Borrowed view into the reader's buffer; valid while the reader lives.
  std::string_view section(size_t i) const {
    const auto& span = sections_[i];
    return std::string_view(data_).substr(span.first, span.second);
  }

 private:
  CheckpointReader() = default;

  std::string data_;
  // (offset, length) pairs into data_ — stable across moves of the reader.
  std::vector<std::pair<size_t, size_t>> sections_;
};

}  // namespace state
}  // namespace onesql

#endif  // ONESQL_STATE_CHECKPOINT_H_
