#ifndef ONESQL_STATE_FRAME_H_
#define ONESQL_STATE_FRAME_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace onesql {
namespace state {

/// CRC32-checksummed frames — the integrity unit shared by the write-ahead
/// feed log and checkpoint files.
///
/// On-disk layout of one frame:
///
///   +----------------+---------------------+----------------+
///   | length: u32 LE | payload bytes       | crc32: u32 LE  |
///   +----------------+---------------------+----------------+
///
/// The CRC covers the payload *and* the length word, so a damaged length
/// cannot silently re-frame the rest of the file: a bit flip anywhere in the
/// frame fails verification. Truncation is detected by the length running
/// past the end of the file (or a partial trailer).

/// Appends one frame wrapping `payload` to `*out`.
void AppendFrame(std::string* out, std::string_view payload);

/// Reads one frame from [*p, end): validates length and CRC, advances *p
/// past the frame, and returns a view of the payload (into the same backing
/// buffer). Truncated or corrupted frames yield Status::DataLoss.
Result<std::string_view> ReadFrame(const char** p, const char* end);

/// Reads a whole file into memory. Missing/unreadable files yield NotFound.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path` atomically: the bytes are written to a temporary
/// sibling, flushed and fsync'd, then renamed into place — a crash during
/// the write leaves either the old file or the new one, never a torn mix.
/// The parent directory is fsync'd after the rename: without it the new
/// directory entry itself may not be durable, and a crash can make the
/// just-"committed" file vanish (or resurrect the old one).
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Creates directory `path` if it does not exist (one level; parents must
/// already exist). Succeeds if the directory is already present. A freshly
/// created directory's entry is made durable by fsync'ing its parent.
Status EnsureDirectory(const std::string& path);

/// Fsyncs the directory at `dir`, making previously created/renamed entries
/// inside it durable. No-op on Windows (directory handles cannot be
/// committed there; NTFS metadata journaling covers the rename).
Status FsyncDir(const std::string& dir);

/// FsyncDir on the directory containing `path` ("." for a bare filename).
Status FsyncParentDir(const std::string& path);

}  // namespace state
}  // namespace onesql

#endif  // ONESQL_STATE_FRAME_H_
