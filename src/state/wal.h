#ifndef ONESQL_STATE_WAL_H_
#define ONESQL_STATE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/timestamp.h"

namespace onesql {

namespace obs {
struct WalMetrics;
}  // namespace obs

namespace state {

/// One durably logged feed event. This mirrors the engine's FeedEvent but is
/// defined here so the state layer does not depend on the engine layer; the
/// engine converts between the two shapes at its WAL boundary.
struct WalRecord {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1, kWatermark = 2 };

  uint64_t seq = 0;  ///< Position in the global feed order, 0-based.
  Kind kind = Kind::kInsert;
  std::string source;
  Timestamp ptime = Timestamp::Min();
  Row row;                             ///< kInsert / kDelete
  Timestamp watermark = Timestamp::Min();  ///< kWatermark
};

/// The write-ahead feed log: an append-only file of CRC32-framed WalRecords,
/// preceded by a magic/version header frame. Every feed event is appended
/// (and fsync'd at batch boundaries) *before* it is dispatched to running
/// queries, so a crash loses at most events the caller was never told were
/// accepted.
///
/// File layout:
///
///   frame 0:  "1SQLWAL1" magic + varint format version (currently 1)
///   frame 1…: one WalRecord each (varint seq, u8 kind, string source,
///             signed-varint ptime millis, then row or watermark payload)
///
/// Records carry explicit sequence numbers so recovery can replay exactly
/// the suffix past a checkpoint's feed position. Sequence numbers must be
/// contiguous; a gap or regression is reported as corruption.
///
/// Any structural damage — truncated frame, CRC mismatch, bad magic, wrong
/// version, non-contiguous seq — fails with Status::DataLoss. The log is
/// strict by design: a damaged WAL is surfaced to the operator rather than
/// silently replayed up to the damage point.
class FeedLog {
 public:
  FeedLog() = default;
  ~FeedLog();

  FeedLog(const FeedLog&) = delete;
  FeedLog& operator=(const FeedLog&) = delete;
  FeedLog(FeedLog&& other) noexcept;
  FeedLog& operator=(FeedLog&& other) noexcept;

  /// Opens (creating if absent) the log at `path` for appending. An existing
  /// file is fully validated first — every frame checked, every record
  /// decoded — and the next sequence number is recovered from its tail.
  static Result<FeedLog> Open(const std::string& path);

  /// Reads and validates every record of the log at `path` without opening
  /// it for appending. An empty vector means a fresh (header-only) log.
  static Result<std::vector<WalRecord>> ReadAll(const std::string& path);

  /// Appends one record (buffered; call Sync before dispatching the event).
  /// `record.seq` must equal next_seq().
  Status Append(const WalRecord& record);

  /// Flushes buffered appends to the OS and fsyncs the file.
  Status Sync();

  /// Closes the underlying file (Sync first if records were appended).
  Status Close();

  /// Sequence number the next Append must carry.
  uint64_t next_seq() const { return next_seq_; }

  const std::string& path() const { return path_; }
  bool is_open() const { return file_ != nullptr; }

  /// Attaches durability instruments (nullptr detaches — the default).
  /// Append records its latency and byte count; Sync records fsync latency.
  void AttachMetrics(const obs::WalMetrics* metrics) { metrics_ = metrics; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t next_seq_ = 0;
  bool dirty_ = false;
  const obs::WalMetrics* metrics_ = nullptr;
};

/// Asynchronous group-commit front end over a FeedLog (DESIGN.md §16).
///
/// A single appender thread owns the underlying log. Producers enqueue
/// records with Append (cheap: one mutex-protected vector push) and block in
/// WaitDurable until the appender's next fsync covers their sequence number.
/// While one fsync is in flight every newly enqueued record accumulates into
/// the next group, so the fsync cost is amortized across all feeders that
/// arrived during it — under contention the log pays one fsync per *group*,
/// not one per feed, while each caller still gets the same guarantee as the
/// synchronous path: its records are durable before WaitDurable returns.
///
/// The file format is exactly FeedLog's; a log written under group commit is
/// read back by FeedLog::ReadAll / replayed by recovery unchanged, and a
/// crash at any point leaves a valid prefix of whole groups.
///
/// Errors are sticky: once an append or sync fails, that status is returned
/// to every current and future waiter (the log's contents past the error are
/// undefined on disk, so pretending later groups committed would lie about
/// durability).
///
/// Thread-safe: any number of producer threads may call Append/WaitDurable
/// concurrently; Sync/Close serialize against them.
class GroupCommitLog {
 public:
  /// Opens (creating/validating) the log at `path` — see FeedLog::Open —
  /// and starts the appender thread.
  static Result<std::unique_ptr<GroupCommitLog>> Open(const std::string& path);

  ~GroupCommitLog();

  GroupCommitLog(const GroupCommitLog&) = delete;
  GroupCommitLog& operator=(const GroupCommitLog&) = delete;

  /// Enqueues one record. `record.seq` must equal next_seq() (enqueue
  /// order). Returns immediately; durability comes from WaitDurable.
  Status Append(WalRecord record);

  /// Blocks until every record with seq < `up_to_seq` is fsync'd (or the
  /// log has failed; the sticky error is returned).
  Status WaitDurable(uint64_t up_to_seq);

  /// Full barrier: waits until everything enqueued so far is durable.
  Status Sync();

  /// Drains, syncs, and stops the appender thread. Idempotent.
  Status Close();

  /// Sequence number the next Append must carry (enqueue position).
  uint64_t next_seq() const;

  const std::string& path() const { return path_; }

  /// Attaches durability instruments (nullptr detaches). The inner log
  /// records append/sync latencies on the appender thread; the group-size
  /// and group-wait histograms are recorded here.
  void AttachMetrics(const obs::WalMetrics* metrics);

 private:
  explicit GroupCommitLog(FeedLog log);

  void AppenderLoop();

  std::string path_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< appender waits for records
  std::condition_variable durable_cv_;  ///< feeders wait for their group
  std::vector<WalRecord> pending_;      ///< enqueued, not yet appended
  uint64_t enqueued_seq_ = 0;           ///< next seq to enqueue
  uint64_t durable_seq_ = 0;            ///< seqs below this are fsync'd
  Status error_;                        ///< sticky failure
  bool stop_ = false;
  const obs::WalMetrics* metrics_ = nullptr;

  /// Owned by the appender thread between start and join; guarded by mu_
  /// only around Close's handover.
  FeedLog log_;
  std::thread appender_;
};

}  // namespace state
}  // namespace onesql

#endif  // ONESQL_STATE_WAL_H_
