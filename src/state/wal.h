#ifndef ONESQL_STATE_WAL_H_
#define ONESQL_STATE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/timestamp.h"

namespace onesql {

namespace obs {
struct WalMetrics;
}  // namespace obs

namespace state {

/// One durably logged feed event. This mirrors the engine's FeedEvent but is
/// defined here so the state layer does not depend on the engine layer; the
/// engine converts between the two shapes at its WAL boundary.
struct WalRecord {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1, kWatermark = 2 };

  uint64_t seq = 0;  ///< Position in the global feed order, 0-based.
  Kind kind = Kind::kInsert;
  std::string source;
  Timestamp ptime = Timestamp::Min();
  Row row;                             ///< kInsert / kDelete
  Timestamp watermark = Timestamp::Min();  ///< kWatermark
};

/// The write-ahead feed log: an append-only file of CRC32-framed WalRecords,
/// preceded by a magic/version header frame. Every feed event is appended
/// (and fsync'd at batch boundaries) *before* it is dispatched to running
/// queries, so a crash loses at most events the caller was never told were
/// accepted.
///
/// File layout:
///
///   frame 0:  "1SQLWAL1" magic + varint format version (currently 1)
///   frame 1…: one WalRecord each (varint seq, u8 kind, string source,
///             signed-varint ptime millis, then row or watermark payload)
///
/// Records carry explicit sequence numbers so recovery can replay exactly
/// the suffix past a checkpoint's feed position. Sequence numbers must be
/// contiguous; a gap or regression is reported as corruption.
///
/// Any structural damage — truncated frame, CRC mismatch, bad magic, wrong
/// version, non-contiguous seq — fails with Status::DataLoss. The log is
/// strict by design: a damaged WAL is surfaced to the operator rather than
/// silently replayed up to the damage point.
class FeedLog {
 public:
  FeedLog() = default;
  ~FeedLog();

  FeedLog(const FeedLog&) = delete;
  FeedLog& operator=(const FeedLog&) = delete;
  FeedLog(FeedLog&& other) noexcept;
  FeedLog& operator=(FeedLog&& other) noexcept;

  /// Opens (creating if absent) the log at `path` for appending. An existing
  /// file is fully validated first — every frame checked, every record
  /// decoded — and the next sequence number is recovered from its tail.
  static Result<FeedLog> Open(const std::string& path);

  /// Reads and validates every record of the log at `path` without opening
  /// it for appending. An empty vector means a fresh (header-only) log.
  static Result<std::vector<WalRecord>> ReadAll(const std::string& path);

  /// Appends one record (buffered; call Sync before dispatching the event).
  /// `record.seq` must equal next_seq().
  Status Append(const WalRecord& record);

  /// Flushes buffered appends to the OS and fsyncs the file.
  Status Sync();

  /// Closes the underlying file (Sync first if records were appended).
  Status Close();

  /// Sequence number the next Append must carry.
  uint64_t next_seq() const { return next_seq_; }

  const std::string& path() const { return path_; }
  bool is_open() const { return file_ != nullptr; }

  /// Attaches durability instruments (nullptr detaches — the default).
  /// Append records its latency and byte count; Sync records fsync latency.
  void AttachMetrics(const obs::WalMetrics* metrics) { metrics_ = metrics; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t next_seq_ = 0;
  bool dirty_ = false;
  const obs::WalMetrics* metrics_ = nullptr;
};

}  // namespace state
}  // namespace onesql

#endif  // ONESQL_STATE_WAL_H_
