#include "state/frame.h"

#include <cstdio>

#include "common/crc32.h"

#include <cerrno>

#ifdef _WIN32
#include <direct.h>
#include <io.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace onesql {
namespace state {

namespace {

void PutU32LE(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32LE(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

int FsyncFile(std::FILE* f) {
#ifdef _WIN32
  return _commit(_fileno(f));
#else
  return ::fsync(fileno(f));
#endif
}

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  const size_t start = out->size();
  PutU32LE(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
  // CRC over length word + payload: a flipped length bit fails verification
  // instead of re-framing the remainder of the file.
  const uint32_t crc = Crc32(out->data() + start, 4 + payload.size());
  PutU32LE(out, crc);
}

Result<std::string_view> ReadFrame(const char** p, const char* end) {
  const char* q = *p;
  if (end - q < 4) {
    return Status::DataLoss("truncated frame: missing length header");
  }
  const uint32_t len = GetU32LE(q);
  if (static_cast<uint64_t>(end - q) < 4 + static_cast<uint64_t>(len) + 4) {
    return Status::DataLoss(
        "truncated frame: payload or checksum cut short (frame claims " +
        std::to_string(len) + " payload bytes, " +
        std::to_string(end - q - 4) + " remain)");
  }
  const uint32_t want = GetU32LE(q + 4 + len);
  const uint32_t got = Crc32(q, 4 + len);
  if (want != got) {
    return Status::DataLoss("frame checksum mismatch: stored CRC32 does not "
                            "match the frame contents (corrupted file)");
  }
  std::string_view payload(q + 4, len);
  *p = q + 4 + len + 4;
  return payload;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::string data;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::DataLoss("I/O error while reading '" + path + "'");
  return data;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + tmp + "' for writing");
  }
  const bool wrote =
      data.empty() || std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool flushed = std::fflush(f) == 0 && FsyncFile(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return Status::DataLoss("failed to write '" + tmp + "' durably");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::DataLoss("failed to rename '" + tmp + "' into place");
  }
  // The rename only becomes crash-durable once the directory entry itself is
  // on disk: fsync'ing the file alone leaves a window where recovery finds
  // neither the old file nor the new one.
  return FsyncParentDir(path);
}

Status EnsureDirectory(const std::string& path) {
#ifdef _WIN32
  if (_mkdir(path.c_str()) == 0) return Status::OK();
  if (errno == EEXIST) return Status::OK();
#else
  if (::mkdir(path.c_str(), 0755) == 0) {
    // Persist the new directory's own entry, matching the file story above.
    return FsyncParentDir(path);
  }
  if (errno == EEXIST) return Status::OK();
#endif
  return Status::InvalidArgument("cannot create directory '" + path + "'");
}

Status FsyncDir(const std::string& dir) {
#ifdef _WIN32
  (void)dir;
  return Status::OK();
#else
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::NotFound("cannot open directory '" + dir +
                            "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::DataLoss("failed to fsync directory '" + dir + "'");
  }
  return Status::OK();
#endif
}

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return FsyncDir(".");
  if (slash == 0) return FsyncDir("/");
  return FsyncDir(path.substr(0, slash));
}

}  // namespace state
}  // namespace onesql
