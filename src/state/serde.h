#ifndef ONESQL_STATE_SERDE_H_
#define ONESQL_STATE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/changelog.h"
#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace onesql {
namespace state {

/// Binary serialization for the durable-state subsystem (checkpoints and the
/// write-ahead feed log). The encoding is *canonical*: a given in-memory
/// value has exactly one byte representation (varints for integers, zigzag
/// for signed, IEEE-754 bit patterns for doubles, length-prefixed strings),
/// so bit-identical state produces bit-identical files — the property the
/// recovery-equivalence tests lean on.
///
/// Integrity is layered on top by frame.h (CRC32-checksummed frames); the
/// Reader here only detects *structural* damage (truncation, impossible
/// lengths, unknown tags) and reports it as Status::DataLoss.

/// Appends encoded fields to an in-memory buffer.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutVarint(uint64_t v);
  void PutSigned(int64_t v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);  // 8 bytes, little-endian IEEE-754 bit pattern
  void PutBytes(std::string_view bytes);          // raw, no length prefix
  void PutString(std::string_view s);             // varint length + bytes

  void PutTimestamp(Timestamp t) { PutSigned(t.millis()); }
  void PutInterval(Interval i) { PutSigned(i.millis()); }
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutSchema(const Schema& schema);
  void PutChange(const Change& change);

  /// Appends `nested.buffer()` as a varint-length-prefixed blob; the Reader
  /// side mirrors this with `ReadBlob`, which bounds a sub-reader.
  void PutBlob(const Writer& nested) { PutString(nested.buffer()); }

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Decodes fields from a byte range. All reads are bounds-checked; running
/// off the end of the buffer (or reading an impossible length/tag) yields
/// Status::DataLoss and leaves the reader unusable for further progress.
/// The Reader does not own the bytes — keep the backing buffer alive.
class Reader {
 public:
  Reader() : p_(nullptr), end_(nullptr) {}
  explicit Reader(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadSigned();
  Result<bool> ReadBool();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  Result<Timestamp> ReadTimestamp();
  Result<Interval> ReadInterval();
  Result<Value> ReadValue();
  Result<Row> ReadRow();
  Result<Schema> ReadSchema();
  Result<Change> ReadChange();

  /// Reads a varint-length-prefixed blob and returns a sub-reader bounded to
  /// it. The parent reader advances past the blob.
  Result<Reader> ReadBlob();
  /// Like ReadBlob but returns the raw bytes (useful when the same blob must
  /// be decoded several times, e.g. filtered loads into several shards).
  Result<std::string_view> ReadBlobBytes();

  bool AtEnd() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  /// Fails unless the reader consumed its whole range — a cheap structural
  /// check that the writer and reader agree on the format.
  Status ExpectEnd() const;

 private:
  const char* p_;
  const char* end_;
};

}  // namespace state
}  // namespace onesql

#endif  // ONESQL_STATE_SERDE_H_
