#ifndef ONESQL_CQL_CQL_H_
#define ONESQL_CQL_CQL_H_

#include <map>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/timestamp.h"

namespace onesql {
namespace cql {

/// The CQL / STREAM baseline the paper contrasts its proposal against
/// (Sections 2.1, 4). CQL separates three operator classes:
/// stream-to-relation (windows), relation-to-relation (SQL), and
/// relation-to-stream (Istream/Dstream/Rstream). Time is implicit metadata,
/// and out-of-order input is handled by *heartbeat buffering*: rows are held
/// back and fed to the query processor in timestamp order, introducing
/// latency proportional to the disorder.

/// One element of a CQL stream: payload plus its (implicit) timestamp.
struct TimestampedRow {
  Timestamp ts;
  Row row;

  bool operator==(const TimestampedRow& o) const {
    return ts == o.ts && RowsEqual(row, o.row);
  }
};

/// STREAM-style in-order buffer: arrivals are held until a heartbeat
/// guarantees no earlier timestamp can arrive, then released in timestamp
/// order. This is the paper's Section 3.2 contrast to watermarks — the
/// query processor downstream only ever sees in-order data.
class HeartbeatBuffer {
 public:
  /// Buffers one (possibly out-of-order) arrival.
  void Add(Timestamp ts, Row row);

  /// Advances the heartbeat and releases all rows with ts <= heartbeat,
  /// sorted by timestamp. Heartbeats must be monotonic.
  std::vector<TimestampedRow> AdvanceHeartbeat(Timestamp heartbeat);

  /// Rows currently held (the buffering cost of the in-order approach).
  size_t buffered() const { return buffer_.size(); }

  Timestamp heartbeat() const { return heartbeat_; }

 private:
  std::multimap<Timestamp, Row> buffer_;
  Timestamp heartbeat_ = Timestamp::Min();
};

/// An instantaneous relation: the contents of a CQL relation at logical
/// time tau (CQL's R(tau)).
struct InstantRelation {
  Timestamp tau;
  std::vector<Row> rows;
};

/// Stream-to-relation: [RANGE range SLIDE slide]. Evaluates the sequence of
/// instantaneous relations at slide boundaries tau (aligned to the epoch),
/// where R(tau) holds the rows with ts in [tau - range, tau). The stream
/// must be in timestamp order. Relations are produced for every boundary
/// tau with first_ts < tau <= end.
std::vector<InstantRelation> SlidingWindow(
    const std::vector<TimestampedRow>& stream, Interval range, Interval slide,
    Timestamp end);

/// Relation-to-relation: applies `fn` pointwise to each instantaneous
/// relation (this is where ordinary SQL evaluation plugs in).
template <typename Fn>
std::vector<InstantRelation> MapRelation(std::vector<InstantRelation> input,
                                         Fn fn) {
  for (InstantRelation& r : input) {
    r.rows = fn(r.rows);
  }
  return input;
}

/// Relation-to-stream operators (Section 2.1.1):
/// Istream(R) = rows in R(tau) but not R(tau-1).
std::vector<TimestampedRow> Istream(const std::vector<InstantRelation>& rels);
/// Dstream(R) = rows in R(tau-1) but not R(tau).
std::vector<TimestampedRow> Dstream(const std::vector<InstantRelation>& rels);
/// Rstream(R) = all rows of R(tau), at every tau.
std::vector<TimestampedRow> Rstream(const std::vector<InstantRelation>& rels);

/// The CQL formulation of NEXMark Query 7 (the paper's Listing 1):
///
///   SELECT Rstream(B.price, B.itemid)
///   FROM Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
///   WHERE B.price = (SELECT MAX(B1.price) FROM Bid
///                    [RANGE 10 MINUTE SLIDE 10 MINUTE] B1);
///
/// evaluated incrementally over out-of-order arrivals with heartbeat
/// buffering. Emits one batch of results per window boundary, once the
/// heartbeat passes it.
class CqlQuery7 {
 public:
  explicit CqlQuery7(Interval range) : range_(range) {}

  struct Output {
    Timestamp window_end;  // the boundary tau
    Timestamp bidtime;
    int64_t price = 0;
    std::string item;
    Timestamp ptime;  // processing time of emission
  };

  /// Buffers one bid arrival (out-of-order allowed).
  void OnBid(Timestamp ptime, Timestamp bidtime, int64_t price,
             const std::string& item);

  /// Advances the heartbeat; evaluates and returns the Rstream outputs of
  /// every window boundary now known complete.
  std::vector<Output> AdvanceHeartbeat(Timestamp ptime, Timestamp heartbeat);

  /// Rows currently held in the in-order buffer.
  size_t buffered() const { return buffer_.buffered(); }
  /// Rows released in-order but waiting for their window boundary.
  size_t window_pending() const { return window_.size(); }

 private:
  Interval range_;
  HeartbeatBuffer buffer_;
  std::vector<TimestampedRow> window_;  // in-order rows of open windows
  Timestamp next_boundary_ = Timestamp::Min();
  bool started_ = false;
};

}  // namespace cql
}  // namespace onesql

#endif  // ONESQL_CQL_CQL_H_
