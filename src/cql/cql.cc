#include "cql/cql.h"

#include <algorithm>
#include <limits>

namespace onesql {
namespace cql {

void HeartbeatBuffer::Add(Timestamp ts, Row row) {
  buffer_.emplace(ts, std::move(row));
}

std::vector<TimestampedRow> HeartbeatBuffer::AdvanceHeartbeat(
    Timestamp heartbeat) {
  if (heartbeat > heartbeat_) heartbeat_ = heartbeat;
  std::vector<TimestampedRow> released;
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first <= heartbeat_) {
    released.push_back(TimestampedRow{it->first, std::move(it->second)});
    it = buffer_.erase(it);
  }
  return released;
}

namespace {

int64_t FloorAlign(int64_t t, int64_t step) {
  int64_t q = t / step;
  if (t % step != 0 && t < 0) --q;
  return q * step;
}

}  // namespace

std::vector<InstantRelation> SlidingWindow(
    const std::vector<TimestampedRow>& stream, Interval range, Interval slide,
    Timestamp end) {
  std::vector<InstantRelation> out;
  if (stream.empty()) return out;
  // First boundary strictly after the first timestamp.
  const int64_t first_ts = stream.front().ts.millis();
  int64_t tau = FloorAlign(first_ts, slide.millis()) + slide.millis();
  for (; tau <= end.millis(); tau += slide.millis()) {
    InstantRelation rel;
    rel.tau = Timestamp(tau);
    const int64_t lo = tau - range.millis();
    for (const TimestampedRow& tr : stream) {
      if (tr.ts.millis() >= lo && tr.ts.millis() < tau) {
        rel.rows.push_back(tr.row);
      }
      if (tr.ts.millis() >= tau) break;  // stream is in order
    }
    out.push_back(std::move(rel));
  }
  return out;
}

namespace {

std::map<Row, int64_t, RowLess> ToBag(const std::vector<Row>& rows) {
  std::map<Row, int64_t, RowLess> bag;
  for (const Row& r : rows) bag[r] += 1;
  return bag;
}

}  // namespace

std::vector<TimestampedRow> Istream(const std::vector<InstantRelation>& rels) {
  std::vector<TimestampedRow> out;
  std::map<Row, int64_t, RowLess> previous;
  for (const InstantRelation& rel : rels) {
    auto current = ToBag(rel.rows);
    for (const auto& [row, count] : current) {
      auto it = previous.find(row);
      const int64_t prev = it == previous.end() ? 0 : it->second;
      for (int64_t i = prev; i < count; ++i) {
        out.push_back(TimestampedRow{rel.tau, row});
      }
    }
    previous = std::move(current);
  }
  return out;
}

std::vector<TimestampedRow> Dstream(const std::vector<InstantRelation>& rels) {
  std::vector<TimestampedRow> out;
  std::map<Row, int64_t, RowLess> previous;
  for (const InstantRelation& rel : rels) {
    auto current = ToBag(rel.rows);
    for (const auto& [row, count] : previous) {
      auto it = current.find(row);
      const int64_t cur = it == current.end() ? 0 : it->second;
      for (int64_t i = cur; i < count; ++i) {
        out.push_back(TimestampedRow{rel.tau, row});
      }
    }
    previous = std::move(current);
  }
  return out;
}

std::vector<TimestampedRow> Rstream(const std::vector<InstantRelation>& rels) {
  std::vector<TimestampedRow> out;
  for (const InstantRelation& rel : rels) {
    for (const Row& row : rel.rows) {
      out.push_back(TimestampedRow{rel.tau, row});
    }
  }
  return out;
}

void CqlQuery7::OnBid(Timestamp ptime, Timestamp bidtime, int64_t price,
                      const std::string& item) {
  (void)ptime;
  buffer_.Add(bidtime,
              Row{Value::Time(bidtime), Value::Int64(price),
                  Value::String(item)});
}

std::vector<CqlQuery7::Output> CqlQuery7::AdvanceHeartbeat(
    Timestamp ptime, Timestamp heartbeat) {
  std::vector<Output> outputs;
  for (TimestampedRow& tr : buffer_.AdvanceHeartbeat(heartbeat)) {
    if (!started_) {
      started_ = true;
      next_boundary_ =
          Timestamp(FloorAlign(tr.ts.millis(), range_.millis()) +
                    range_.millis());
    }
    window_.push_back(std::move(tr));
  }
  if (!started_) return outputs;

  // Emit every boundary the heartbeat has passed. With SLIDE == RANGE the
  // windows tumble: each boundary consumes the rows below it. The walk is
  // capped by the buffered data: once every released row is consumed, later
  // (empty) boundaries emit nothing, so a far-future heartbeat (e.g. +inf
  // at end of input) terminates after the last data boundary.
  while (next_boundary_ <= heartbeat && !window_.empty()) {
    const Timestamp tau = next_boundary_;
    int64_t max_price = std::numeric_limits<int64_t>::min();
    for (const TimestampedRow& tr : window_) {
      if (tr.ts < tau) {
        max_price = std::max(max_price, tr.row[1].AsInt64());
      }
    }
    for (const TimestampedRow& tr : window_) {
      if (tr.ts < tau && tr.row[1].AsInt64() == max_price) {
        Output out;
        out.window_end = tau;
        out.bidtime = tr.ts;
        out.price = max_price;
        out.item = tr.row[2].AsString();
        out.ptime = ptime;
        outputs.push_back(std::move(out));
      }
    }
    // Tumbling: drop the consumed rows.
    window_.erase(std::remove_if(window_.begin(), window_.end(),
                                 [&](const TimestampedRow& tr) {
                                   return tr.ts < tau;
                                 }),
                  window_.end());
    next_boundary_ = tau + range_;
  }
  return outputs;
}

}  // namespace cql
}  // namespace onesql
