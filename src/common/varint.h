#ifndef ONESQL_COMMON_VARINT_H_
#define ONESQL_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace onesql {

/// LEB128-style base-128 varints, the integer encoding of the durability
/// layer (WAL records and checkpoint sections). Unsigned values are encoded
/// 7 bits per byte, little-endian group order, high bit = continuation;
/// signed values are zigzag-mapped first so that small magnitudes of either
/// sign stay short.

/// Appends the varint encoding of `v` (at most 10 bytes) to `*out`.
void AppendVarint64(std::string* out, uint64_t v);

/// Decodes a varint from [*p, end). On success advances *p past the encoding
/// and returns true; on truncated or over-long (> 10 byte) input returns
/// false and leaves *p unspecified.
bool GetVarint64(const char** p, const char* end, uint64_t* out);

/// Zigzag mapping: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... so sign extension
/// never inflates the encoding.
constexpr uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Signed helpers: zigzag + varint.
void AppendSignedVarint64(std::string* out, int64_t v);
bool GetSignedVarint64(const char** p, const char* end, int64_t* out);

}  // namespace onesql

#endif  // ONESQL_COMMON_VARINT_H_
