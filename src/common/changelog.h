#ifndef ONESQL_COMMON_CHANGELOG_H_
#define ONESQL_COMMON_CHANGELOG_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/timestamp.h"

namespace onesql {

/// The kind of a changelog entry. A TVR changelog (Section 3.3.1) encodes the
/// evolution of a relation as a sequence of INSERT and DELETE operations;
/// UPSERT is the keyed encoding described in Appendix B.2.3.
enum class ChangeKind {
  kInsert = 0,
  kDelete,
  kUpsert,  // Only produced by the upsert changelog encoding.
};

const char* ChangeKindToString(ChangeKind kind);

/// One element of a TVR changelog: a row added to or retracted from the
/// relation at a given processing time.
struct Change {
  ChangeKind kind = ChangeKind::kInsert;
  Row row;
  /// Processing time at which the change was applied/materialized.
  Timestamp ptime;

  bool operator==(const Change& o) const {
    return kind == o.kind && RowsEqual(row, o.row) && ptime == o.ptime;
  }

  std::string ToString() const;
};

/// A changelog: the stream encoding of a TVR.
using Changelog = std::vector<Change>;

/// Applies a changelog prefix (entries with ptime <= `as_of`) to an initially
/// empty bag and returns the resulting multiset of rows — the snapshot
/// (instantaneous relation) of the TVR at processing time `as_of`. Entries
/// must be INSERT/DELETE (not UPSERT).
std::vector<Row> SnapshotOf(const Changelog& log, Timestamp as_of);

}  // namespace onesql

#endif  // ONESQL_COMMON_CHANGELOG_H_
