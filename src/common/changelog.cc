#include "common/changelog.h"

#include <map>

namespace onesql {

const char* ChangeKindToString(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kInsert:
      return "INSERT";
    case ChangeKind::kDelete:
      return "DELETE";
    case ChangeKind::kUpsert:
      return "UPSERT";
  }
  return "UNKNOWN";
}

std::string Change::ToString() const {
  std::string out = ChangeKindToString(kind);
  out += " ";
  out += RowToString(row);
  out += " @";
  out += ptime.ToString();
  return out;
}

std::vector<Row> SnapshotOf(const Changelog& log, Timestamp as_of) {
  // Multiset semantics: a relation may contain duplicate rows; DELETE
  // removes a single instance.
  std::map<Row, int64_t, RowLess> bag;
  for (const Change& change : log) {
    if (change.ptime > as_of) continue;
    if (change.kind == ChangeKind::kInsert) {
      bag[change.row] += 1;
    } else if (change.kind == ChangeKind::kDelete) {
      auto it = bag.find(change.row);
      if (it != bag.end()) {
        if (--it->second == 0) bag.erase(it);
      }
    }
  }
  std::vector<Row> out;
  for (const auto& [row, count] : bag) {
    for (int64_t i = 0; i < count; ++i) out.push_back(row);
  }
  return out;
}

}  // namespace onesql
