#include "common/varint.h"

namespace onesql {

void AppendVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(const char** p, const char* end, uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  const char* q = *p;
  while (q < end && shift <= 63) {
    const uint64_t byte = static_cast<unsigned char>(*q++);
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *out = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated, or continuation past the 10th byte
}

void AppendSignedVarint64(std::string* out, int64_t v) {
  AppendVarint64(out, ZigzagEncode(v));
}

bool GetSignedVarint64(const char** p, const char* end, int64_t* out) {
  uint64_t raw = 0;
  if (!GetVarint64(p, end, &raw)) return false;
  *out = ZigzagDecode(raw);
  return true;
}

}  // namespace onesql
