#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace onesql {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kBigint:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kInterval:
      return "INTERVAL";
  }
  return "UNKNOWN";
}

bool IsImplicitlyCoercible(DataType from, DataType to) {
  if (from == to) return true;
  if (from == DataType::kNull) return true;
  if (from == DataType::kBigint && to == DataType::kDouble) return true;
  return false;
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBoolean;
    case 2:
      return DataType::kBigint;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kVarchar;
    case 5:
      return DataType::kTimestamp;
    case 6:
      return DataType::kInterval;
  }
  return DataType::kNull;
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case DataType::kBigint:
      return static_cast<double>(AsInt64());
    case DataType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(std::string("value of type ") +
                                     DataTypeToString(type()) +
                                     " is not numeric");
  }
}

namespace {

int CompareScalar(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& o) const {
  const DataType lt = type();
  const DataType rt = o.type();
  // NULL sorts before everything.
  if (lt == DataType::kNull || rt == DataType::kNull) {
    if (lt == rt) return 0;
    return lt == DataType::kNull ? -1 : 1;
  }
  // Numeric types compare with each other.
  const bool lnum = lt == DataType::kBigint || lt == DataType::kDouble;
  const bool rnum = rt == DataType::kBigint || rt == DataType::kDouble;
  if (lnum && rnum) {
    if (lt == DataType::kBigint && rt == DataType::kBigint) {
      const int64_t a = AsInt64();
      const int64_t b = o.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return CompareScalar(*ToNumeric(), *o.ToNumeric());
  }
  if (lt != rt) {
    return static_cast<int>(lt) < static_cast<int>(rt) ? -1 : 1;
  }
  switch (lt) {
    case DataType::kBoolean:
      return static_cast<int>(AsBool()) - static_cast<int>(o.AsBool());
    case DataType::kVarchar: {
      const int c = AsString().compare(o.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kTimestamp: {
      const auto a = AsTimestamp().millis();
      const auto b = o.AsTimestamp().millis();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kInterval: {
      const auto a = AsInterval().millis();
      const auto b = o.AsInterval().millis();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  const size_t tag = data_.index();
  size_t h = 0;
  switch (type()) {
    case DataType::kNull:
      h = 0;
      break;
    case DataType::kBoolean:
      h = std::hash<bool>()(AsBool());
      break;
    case DataType::kBigint:
      h = std::hash<int64_t>()(AsInt64());
      break;
    case DataType::kDouble:
      h = std::hash<double>()(AsDouble());
      break;
    case DataType::kVarchar:
      h = std::hash<std::string>()(AsString());
      break;
    case DataType::kTimestamp:
      h = std::hash<int64_t>()(AsTimestamp().millis());
      break;
    case DataType::kInterval:
      h = std::hash<int64_t>()(AsInterval().millis());
      break;
  }
  return h ^ (tag * 0x9e3779b97f4a7c15ULL);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBoolean:
      return AsBool() ? "TRUE" : "FALSE";
    case DataType::kBigint:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      const double d = AsDouble();
      if (std::isfinite(d) && d == std::floor(d) &&
          std::fabs(d) < 1e15) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case DataType::kVarchar:
      return AsString();
    case DataType::kTimestamp:
      return AsTimestamp().ToString();
    case DataType::kInterval:
      return AsInterval().ToString();
  }
  return "?";
}

}  // namespace onesql
