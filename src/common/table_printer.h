#ifndef ONESQL_COMMON_TABLE_PRINTER_H_
#define ONESQL_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"

namespace onesql {

/// Renders rows in the ASCII-table style used by the paper's listings:
///
/// | wstart | wend | bidtime | price | item |
/// -------------------------------------------
/// | 8:00   | 8:10 | 8:09    | $5    | D    |
///
/// Columns whose (lowercased) name appears in `dollar_columns` render BIGINT
/// values with a leading '$', matching the paper's price formatting.
class TablePrinter {
 public:
  explicit TablePrinter(const Schema& schema) : schema_(schema) {}

  /// Marks a column to be rendered as a dollar amount.
  void MarkDollarColumn(const std::string& name);

  void AddRow(const Row& row);
  void AddRows(const std::vector<Row>& rows);

  /// Produces the complete table text (header, rule, data rows).
  std::string ToString() const;

 private:
  std::string FormatCell(const Value& value, size_t column) const;

  Schema schema_;
  std::vector<std::string> dollar_columns_;
  std::vector<Row> rows_;
};

}  // namespace onesql

#endif  // ONESQL_COMMON_TABLE_PRINTER_H_
