#include "common/status.h"

namespace onesql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace onesql
