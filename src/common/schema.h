#ifndef ONESQL_COMMON_SCHEMA_H_
#define ONESQL_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace onesql {

/// Marks columns produced by a windowing TVF (Extension 3). The pair of
/// wstart/wend columns is functionally dependent: grouping by either yields
/// the same groups, which the binder exploits, and the sink uses the
/// window-end column to reason about completeness and row versioning.
enum class WindowRole { kNone = 0, kStart, kEnd };

/// A column of a relation. Implements the paper's Extension 1: a column of
/// type TIMESTAMP may be distinguished as an *event time column*, in which
/// case the system maintains an associated watermark for the relation.
struct Field {
  std::string name;
  DataType type = DataType::kNull;
  /// True if this is a watermarked event time column (Extension 1). Only
  /// meaningful for TIMESTAMP columns.
  bool is_event_time = false;
  /// kStart/kEnd when this column is a windowing TVF's wstart/wend output.
  WindowRole window_role = WindowRole::kNone;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type &&
           is_event_time == o.is_event_time && window_role == o.window_role;
  }

  /// "name TIMESTAMP *EVENT_TIME*" style rendering.
  std::string ToString() const;
};

/// An ordered collection of fields describing the rows of a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Case-insensitive lookup; returns the column index.
  std::optional<size_t> FindField(const std::string& name) const;

  /// Index of the first event time column, if any.
  std::optional<size_t> FirstEventTimeIndex() const;

  /// Indexes of every event time column. The paper notes (Section 5) that a
  /// TVR may carry more than one event time attribute, e.g. after a join.
  std::vector<size_t> EventTimeIndexes() const;

  /// Appends a field and returns its index.
  size_t AddField(Field field);

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// Case-insensitive ASCII string equality, used for SQL identifiers.
bool IdentEquals(const std::string& a, const std::string& b);

/// Lowercases an ASCII identifier.
std::string ToLower(const std::string& s);

}  // namespace onesql

#endif  // ONESQL_COMMON_SCHEMA_H_
