#ifndef ONESQL_COMMON_ROW_H_
#define ONESQL_COMMON_ROW_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace onesql {

/// A row is an ordered tuple of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// Structural equality of rows.
bool RowsEqual(const Row& a, const Row& b);

/// Lexicographic total order over rows (using Value::Compare).
int CompareRows(const Row& a, const Row& b);

/// Combines the hashes of every value in the row.
size_t HashRow(const Row& row);

/// "(v1, v2, ...)" rendering for logs and test failure messages.
std::string RowToString(const Row& row);

/// Functors for using Row as a hash-map key.
struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
};
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) < 0;
  }
};

}  // namespace onesql

#endif  // ONESQL_COMMON_ROW_H_
