#ifndef ONESQL_COMMON_RESULT_H_
#define ONESQL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace onesql {

/// Result<T> is either a value of type T or a non-OK Status. It is the
/// return type of every fallible operation that produces a value.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define ONESQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define ONESQL_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ONESQL_ASSIGN_OR_RETURN_NAME(x, y) ONESQL_ASSIGN_OR_RETURN_CONCAT(x, y)

#define ONESQL_ASSIGN_OR_RETURN(lhs, expr) \
  ONESQL_ASSIGN_OR_RETURN_IMPL(            \
      ONESQL_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace onesql

#endif  // ONESQL_COMMON_RESULT_H_
