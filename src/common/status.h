#ifndef ONESQL_COMMON_STATUS_H_
#define ONESQL_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace onesql {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of returning rich status objects instead of throwing across
/// API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kBindError,
  kPlanError,
  kExecutionError,
  kNotImplemented,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  /// Durable state (checkpoint / write-ahead log) was truncated, corrupted,
  /// or fails its CRC — the file cannot be trusted and restore is refused.
  kDataLoss,
};

/// Returns a human-readable name for a status code, e.g. "ParseError".
const char* StatusCodeToString(StatusCode code);

/// A Status encodes the success or failure of an operation. The OK status
/// carries no allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // nullptr means OK.
};

/// Propagates a non-OK status out of the enclosing function.
#define ONESQL_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::onesql::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace onesql

#endif  // ONESQL_COMMON_STATUS_H_
