#include "common/table_printer.h"

#include <algorithm>

namespace onesql {

void TablePrinter::MarkDollarColumn(const std::string& name) {
  dollar_columns_.push_back(ToLower(name));
}

void TablePrinter::AddRow(const Row& row) { rows_.push_back(row); }

void TablePrinter::AddRows(const std::vector<Row>& rows) {
  rows_.insert(rows_.end(), rows.begin(), rows.end());
}

std::string TablePrinter::FormatCell(const Value& value, size_t column) const {
  if (value.is_null()) return "";
  const std::string& name = schema_.field(column).name;
  const bool dollar =
      std::find(dollar_columns_.begin(), dollar_columns_.end(),
                ToLower(name)) != dollar_columns_.end();
  if (dollar && value.type() == DataType::kBigint) {
    return "$" + value.ToString();
  }
  return value.ToString();
}

std::string TablePrinter::ToString() const {
  const size_t ncols = schema_.num_fields();
  std::vector<size_t> widths(ncols);
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (size_t c = 0; c < ncols; ++c) {
    widths[c] = schema_.field(c).name.size();
  }
  for (const Row& row : rows_) {
    std::vector<std::string> line(ncols);
    for (size_t c = 0; c < ncols && c < row.size(); ++c) {
      line[c] = FormatCell(row[c], c);
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }

  auto emit_line = [&](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t c = 0; c < ncols; ++c) {
      out += " ";
      const std::string& cell = c < line.size() ? line[c] : std::string();
      out += cell;
      out += std::string(widths[c] - cell.size(), ' ');
      out += " |";
    }
    out += "\n";
    return out;
  };

  std::vector<std::string> header(ncols);
  for (size_t c = 0; c < ncols; ++c) header[c] = schema_.field(c).name;

  std::string out = emit_line(header);
  size_t total = 1;
  for (size_t c = 0; c < ncols; ++c) total += widths[c] + 3;
  out += std::string(total, '-');
  out += "\n";
  for (const auto& line : cells) out += emit_line(line);
  return out;
}

}  // namespace onesql
