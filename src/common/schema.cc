#include "common/schema.h"

#include <cctype>

namespace onesql {

bool IdentEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Field::ToString() const {
  std::string out = name;
  out += " ";
  out += DataTypeToString(type);
  if (is_event_time) out += " *EVENT_TIME*";
  return out;
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (IdentEquals(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::FirstEventTimeIndex() const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].is_event_time) return i;
  }
  return std::nullopt;
}

std::vector<size_t> Schema::EventTimeIndexes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].is_event_time) out.push_back(i);
  }
  return out;
}

size_t Schema::AddField(Field field) {
  fields_.push_back(std::move(field));
  return fields_.size() - 1;
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace onesql
