#ifndef ONESQL_COMMON_CRC32_H_
#define ONESQL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace onesql {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
/// by the durability layer to frame write-ahead-log records and checkpoint
/// sections so that truncated or bit-flipped files are detected instead of
/// deserialized into garbage.
///
/// `Crc32(data, n)` computes the checksum of one buffer. For incremental
/// computation, feed the previous result back in as `seed`:
///
///   uint32_t c = Crc32(a, na);
///   c = Crc32(b, nb, c);            // == Crc32 of the concatenation a·b
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace onesql

#endif  // ONESQL_COMMON_CRC32_H_
