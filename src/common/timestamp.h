#ifndef ONESQL_COMMON_TIMESTAMP_H_
#define ONESQL_COMMON_TIMESTAMP_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/result.h"

namespace onesql {

/// An interval (duration) with millisecond resolution. Used both for SQL
/// INTERVAL values and for window durations / materialization delays.
class Interval {
 public:
  constexpr Interval() : millis_(0) {}
  constexpr explicit Interval(int64_t millis) : millis_(millis) {}

  static constexpr Interval Millis(int64_t ms) { return Interval(ms); }
  static constexpr Interval Seconds(int64_t s) { return Interval(s * 1000); }
  static constexpr Interval Minutes(int64_t m) {
    return Interval(m * 60 * 1000);
  }
  static constexpr Interval Hours(int64_t h) {
    return Interval(h * 60 * 60 * 1000);
  }
  static constexpr Interval Days(int64_t d) {
    return Interval(d * 24 * 60 * 60 * 1000);
  }

  constexpr int64_t millis() const { return millis_; }

  constexpr bool operator==(const Interval& o) const {
    return millis_ == o.millis_;
  }
  constexpr auto operator<=>(const Interval& o) const {
    return millis_ <=> o.millis_;
  }
  constexpr Interval operator+(const Interval& o) const {
    return Interval(millis_ + o.millis_);
  }
  constexpr Interval operator-(const Interval& o) const {
    return Interval(millis_ - o.millis_);
  }
  constexpr Interval operator*(int64_t k) const {
    return Interval(millis_ * k);
  }
  constexpr Interval operator-() const { return Interval(-millis_); }

  /// Renders like "10m", "1h30m", "250ms", matching bench/test output needs.
  std::string ToString() const;

 private:
  int64_t millis_;
};

/// A point in time with millisecond resolution. The same representation is
/// used for event time (data) and processing time (the engine's clock); the
/// paper's semantics require keeping the two notions distinct, which we do
/// by convention at API level (parameters named `event_time` vs `ptime`).
class Timestamp {
 public:
  constexpr Timestamp() : millis_(kMinMillis) {}
  constexpr explicit Timestamp(int64_t millis_since_epoch)
      : millis_(millis_since_epoch) {}

  /// Minimum/maximum representable instants. Min() doubles as the initial
  /// watermark ("nothing is known complete yet") and Max() as the final
  /// watermark ("input is fully complete").
  static constexpr Timestamp Min() { return Timestamp(kMinMillis); }
  static constexpr Timestamp Max() { return Timestamp(kMaxMillis); }

  /// Convenience constructor for the paper's "8:07"-style wall-clock times:
  /// hours/minutes/seconds on the epoch day.
  static constexpr Timestamp FromHMS(int h, int m, int s = 0) {
    return Timestamp(((h * 60LL + m) * 60 + s) * 1000);
  }

  /// Parses "H:MM", "H:MM:SS", or a raw integer millisecond count.
  static Result<Timestamp> Parse(const std::string& text);

  constexpr int64_t millis() const { return millis_; }

  constexpr bool operator==(const Timestamp& o) const {
    return millis_ == o.millis_;
  }
  constexpr auto operator<=>(const Timestamp& o) const {
    return millis_ <=> o.millis_;
  }

  /// Timestamp +/- Interval saturates at the Min()/Max() sentinels instead of
  /// wrapping: the sentinels are absorbing (-inf + d = -inf, +inf - d = +inf)
  /// and finite arithmetic clamps into [Min(), Max()]. This keeps watermark
  /// math such as `Max() + allowed_lateness` (sink completeness gating) and
  /// `Min() - lateness` well-defined instead of wrapping past the sentinels.
  constexpr Timestamp operator+(const Interval& d) const {
    return Timestamp(SaturatedShift(millis_, d.millis()));
  }
  constexpr Timestamp operator-(const Interval& d) const {
    return Timestamp(SaturatedShift(millis_, NegateMillis(d.millis())));
  }
  constexpr Interval operator-(const Timestamp& o) const {
    return Interval(SaturatedDiff(millis_, o.millis_));
  }

  /// Renders "H:MM" (or "H:MM:SS.mmm" when sub-minute precision is present)
  /// for timestamps within the epoch day — the format used throughout the
  /// paper's listings — and a raw millisecond count otherwise. Min()/Max()
  /// render as "-inf"/"+inf".
  std::string ToString() const;

 private:
  static constexpr int64_t kMinMillis =
      std::numeric_limits<int64_t>::min() / 4;
  static constexpr int64_t kMaxMillis =
      std::numeric_limits<int64_t>::max() / 4;

  /// -millis without UB on int64 min.
  static constexpr int64_t NegateMillis(int64_t ms) {
    return ms == std::numeric_limits<int64_t>::min()
               ? std::numeric_limits<int64_t>::max()
               : -ms;
  }

  /// base + delta with sentinel absorption and clamping to [kMin, kMax].
  static constexpr int64_t SaturatedShift(int64_t base, int64_t delta) {
    if (base <= kMinMillis) return kMinMillis;  // -inf absorbs
    if (base >= kMaxMillis) return kMaxMillis;  // +inf absorbs
    int64_t sum = 0;
    if (__builtin_add_overflow(base, delta, &sum)) {
      return delta > 0 ? kMaxMillis : kMinMillis;
    }
    if (sum >= kMaxMillis) return kMaxMillis;
    if (sum <= kMinMillis) return kMinMillis;
    return sum;
  }

  /// a - b clamped to the representable int64 range (for Interval results).
  static constexpr int64_t SaturatedDiff(int64_t a, int64_t b) {
    int64_t diff = 0;
    if (__builtin_sub_overflow(a, b, &diff)) {
      return a > b ? std::numeric_limits<int64_t>::max()
                   : std::numeric_limits<int64_t>::min();
    }
    return diff;
  }

  int64_t millis_;
};

}  // namespace onesql

#endif  // ONESQL_COMMON_TIMESTAMP_H_
