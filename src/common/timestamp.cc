#include "common/timestamp.h"

#include <cstdio>
#include <cstdlib>

namespace onesql {

std::string Interval::ToString() const {
  int64_t ms = millis_;
  std::string out;
  if (ms < 0) {
    out += "-";
    ms = -ms;
  }
  const int64_t hours = ms / 3'600'000;
  ms %= 3'600'000;
  const int64_t minutes = ms / 60'000;
  ms %= 60'000;
  const int64_t seconds = ms / 1000;
  ms %= 1000;
  bool wrote = false;
  char buf[32];
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%lldh", static_cast<long long>(hours));
    out += buf;
    wrote = true;
  }
  if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%lldm", static_cast<long long>(minutes));
    out += buf;
    wrote = true;
  }
  if (seconds > 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(seconds));
    out += buf;
    wrote = true;
  }
  if (ms > 0 || !wrote) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ms));
    out += buf;
  }
  return out;
}

Result<Timestamp> Timestamp::Parse(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty timestamp literal");
  }
  // "H:MM" or "H:MM:SS" forms.
  if (text.find(':') != std::string::npos) {
    int h = 0, m = 0, s = 0;
    const int n = std::sscanf(text.c_str(), "%d:%d:%d", &h, &m, &s);
    if (n < 2 || h < 0 || m < 0 || m > 59 || s < 0 || s > 59) {
      return Status::InvalidArgument("malformed timestamp literal: " + text);
    }
    return Timestamp::FromHMS(h, m, s);
  }
  // Raw millisecond count.
  char* end = nullptr;
  const long long ms = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("malformed timestamp literal: " + text);
  }
  return Timestamp(ms);
}

std::string Timestamp::ToString() const {
  if (*this == Min()) return "-inf";
  if (*this == Max()) return "+inf";
  const int64_t day_ms = 24LL * 60 * 60 * 1000;
  if (millis_ >= 0 && millis_ < day_ms) {
    const int64_t total_seconds = millis_ / 1000;
    const int h = static_cast<int>(total_seconds / 3600);
    const int m = static_cast<int>((total_seconds / 60) % 60);
    const int s = static_cast<int>(total_seconds % 60);
    const int ms = static_cast<int>(millis_ % 1000);
    char buf[32];
    if (s == 0 && ms == 0) {
      std::snprintf(buf, sizeof(buf), "%d:%02d", h, m);
    } else if (ms == 0) {
      std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", h, m, s);
    } else {
      std::snprintf(buf, sizeof(buf), "%d:%02d:%02d.%03d", h, m, s, ms);
    }
    return buf;
  }
  return std::to_string(millis_);
}

}  // namespace onesql
