#include "common/row.h"

namespace onesql {

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

int CompareRows(const Row& a, const Row& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678;
  for (const Value& v : row) {
    h = h * 1000003 ^ v.Hash();
  }
  return h ^ row.size();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace onesql
