#ifndef ONESQL_COMMON_VALUE_H_
#define ONESQL_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/timestamp.h"

namespace onesql {

/// SQL data types supported by the engine.
enum class DataType {
  kNull = 0,   // Type of the NULL literal before coercion.
  kBoolean,
  kBigint,
  kDouble,
  kVarchar,
  kTimestamp,
  kInterval,
};

/// Returns the SQL spelling of a type, e.g. "BIGINT".
const char* DataTypeToString(DataType type);

/// Returns true if values of `from` may be implicitly widened to `to`
/// (identity, NULL to anything, or BIGINT to DOUBLE).
bool IsImplicitlyCoercible(DataType from, DataType to);

/// A runtime SQL value: a tagged union over the supported data types.
/// Values are cheap to copy for all types except VARCHAR.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Time(Timestamp t) { return Value(Payload(t)); }
  static Value Duration(Interval i) { return Value(Payload(i)); }

  DataType type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (checked by assert in debug builds).
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  Timestamp AsTimestamp() const { return std::get<Timestamp>(data_); }
  Interval AsInterval() const { return std::get<Interval>(data_); }

  /// Numeric value as double, widening BIGINT; error for other types.
  Result<double> ToNumeric() const;

  /// Equality: same type and same payload. NULL equals NULL here (this is
  /// *identity* equality used for grouping and changelog matching; SQL
  /// ternary-logic equality lives in the expression evaluator).
  bool operator==(const Value& o) const { return data_ == o.data_; }

  /// Total order used for grouping/sorting: NULL first, then by type tag,
  /// then by payload; BIGINT and DOUBLE compare numerically with each other.
  int Compare(const Value& o) const;
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Stable hash for group keys.
  size_t Hash() const;

  /// Display rendering: "NULL", "TRUE", "42", "3.5", "abc", "8:07", "10m".
  std::string ToString() const;

 private:
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string, Timestamp, Interval>;
  explicit Value(Payload payload) : data_(std::move(payload)) {}

  Payload data_;
};

}  // namespace onesql

#endif  // ONESQL_COMMON_VALUE_H_
